"""Property test: the two-level Glimpse search equals an exhaustive scan.

This is the soundness/completeness property of the block index: for any
corpus and any query, filtering through candidate blocks then verifying
must give exactly the same answer as scanning every document.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cba.engine import CBAEngine
from repro.cba.queryast import And, Not, Or, Phrase, Term
from repro.util.bitmap import Bitmap

words = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"])

documents = st.lists(st.lists(words, max_size=12).map(" ".join),
                     min_size=0, max_size=12)

leaves = st.one_of(
    words.map(Term),
    st.lists(words, min_size=2, max_size=2).map(Phrase),
)

queries = st.recursive(
    leaves,
    lambda kids: st.one_of(
        st.lists(kids, min_size=2, max_size=3).map(And),
        st.lists(kids, min_size=2, max_size=3).map(Or),
        kids.map(Not),
    ),
    max_leaves=6)


def build_engine(texts, num_blocks):
    store = dict(enumerate(texts))
    engine = CBAEngine(loader=lambda k: store.get(k, ""),
                       num_blocks=num_blocks, min_term_length=1,
                       stopwords=set())
    for key, text in store.items():
        engine.index_document(key, path=f"/{key}", mtime=0.0)
    return engine


@settings(max_examples=60, deadline=None)
@given(documents, queries, st.sampled_from([1, 3, 16]))
def test_index_search_equals_naive_scan(texts, query, num_blocks):
    engine = build_engine(texts, num_blocks)
    assert engine.search(query) == engine.naive_search(query)


@settings(max_examples=40, deadline=None)
@given(documents, queries, st.data())
def test_scoped_search_equals_naive_scan(texts, query, data):
    engine = build_engine(texts, num_blocks=4)
    universe = sorted(engine.all_docs())
    scope = Bitmap(data.draw(st.sets(st.sampled_from(universe))
                             if universe else st.just(set())))
    assert engine.search(query, scope) == engine.naive_search(query, scope)


@settings(max_examples=40, deadline=None)
@given(documents, queries)
def test_results_within_universe(texts, query):
    engine = build_engine(texts, num_blocks=2)
    assert engine.search(query).issubset(engine.all_docs())


@settings(max_examples=30, deadline=None)
@given(documents, st.data())
def test_incremental_removal_equals_rebuild(texts, data):
    """Removing documents incrementally must match a fresh index."""
    engine = build_engine(texts, num_blocks=4)
    keys = sorted(range(len(texts)))
    to_remove = data.draw(st.sets(st.sampled_from(keys)) if keys
                          else st.just(set()))
    for key in to_remove:
        engine.remove_document(key)
    survivors = [texts[k] for k in keys if k not in to_remove]
    fresh = build_engine(survivors, num_blocks=4)
    for word in ["alpha", "beta", "gamma"]:
        got = {engine.doc_by_id(d).key for d in engine.search(Term(word))}
        expect = {k for k in keys if k not in to_remove
                  and word in texts[k].split()}
        assert got == expect, word
        assert len(fresh.search(Term(word))) == len(expect)
