"""Property: snapshot reads equal eager reads *as of the publish point*.

The serving tier's contract (DESIGN.md §3g) has two halves:

(a) a snapshot read answers exactly what an always-fresh (eager) world
    answered at the moment the snapshot's version was published — never a
    torn in-between state, never anything newer — and performs **zero**
    scheduler drains doing it;

(b) ``consistency='strong'`` is bit-identical to the PR 5 barrier path
    (the default ``glimpse``), which in turn is bit-identical to eager.

This suite fuzzes both against scripted interleavings of writes,
removals, moves, strong and snapshot queries, async syncs, drains, and
*forced publishes*.  The eager world doubles as the oracle: after every
op we record its raw doc-id answers, and note which op index each
batched-world snapshot version was published at.  A snapshot read at
version *v* must then reproduce the oracle's answers from *v*'s publish
point, bit for bit — doc ids are comparable across worlds because
enqueue-time reservation pins them (PR 5 property).

``SNAP_SEED`` shifts the fuzz seeds and ``SNAP_K`` (>0) runs the same
property against a sharded search cluster with per-shard read replicas
(CI matrix).
"""

import os
import random

import pytest

from repro.cba.queryparser import parse_query
from repro.cluster import ClusterFactory
from repro.core.hacfs import HacFileSystem
from repro.shell.session import HacShell

BASE_SEED = int(os.environ.get("SNAP_SEED", "0"))
K = int(os.environ.get("SNAP_K", "0"))

NAMES = [f"m{i}.txt" for i in range(8)]
WORDS = ["fingerprint", "banana", "ridge", "recipe", "lunch", "budget",
         "minutiae", "bread"]
QUERIES = ["fingerprint", "banana AND recipe", "fingerprint OR lunch",
           "ridge AND NOT banana", '"fingerprint ridge"']


def build_world(mode: str) -> HacShell:
    factory = ClusterFactory(shards=K, latency=0.0) if K else None
    shell = HacShell(HacFileSystem(engine_factory=factory))
    hac = shell.hacfs
    hac.makedirs("/mail")
    hac.write_file("/mail/seed.txt", b"fingerprint ridge baseline\n")
    hac.clock.tick()
    hac.ssync("/")
    hac.watch("/mail")
    hac.maintenance.set_mode(mode)
    return shell


def op_script(seed: int, n_ops: int = 90):
    rng = random.Random(seed)
    ops = []
    for _ in range(n_ops):
        r = rng.random()
        if r < 0.40:
            text = " ".join(rng.choices(WORDS, k=rng.randint(2, 6))) + "\n"
            ops.append(("write", rng.choice(NAMES), text))
        elif r < 0.52:
            ops.append(("rm", rng.choice(NAMES)))
        elif r < 0.62:
            ops.append(("mv", rng.choice(NAMES), rng.choice(NAMES)))
        elif r < 0.74:
            ops.append(("snap_query", rng.choice(QUERIES)))
        elif r < 0.84:
            ops.append(("strong_query", rng.choice(QUERIES)))
        elif r < 0.90:
            ops.append(("ssync_async",))
        elif r < 0.95:
            ops.append(("drain",))
        else:
            ops.append(("publish",))
    ops.append(("drain",))
    return ops


def apply_op(shell: HacShell, op):
    """Run one scripted op; both worlds guard identically (same tree), so
    an op that is a no-op in one is a no-op in the other."""
    hac = shell.hacfs
    kind = op[0]
    if kind == "write":
        shell.write(f"/mail/{op[1]}", op[2])
        hac.clock.tick()
    elif kind == "rm":
        if hac.isfile(f"/mail/{op[1]}"):
            shell.rm(f"/mail/{op[1]}")
    elif kind == "mv":
        src, dst = f"/mail/{op[1]}", f"/mail/{op[2]}"
        if hac.isfile(src) and not hac.exists(dst):
            shell.mv(src, dst)
    elif kind == "strong_query":
        return shell.glimpse(op[1], consistency="strong")
    elif kind == "ssync_async":
        shell.ssync("/", asynchronous=True)
    elif kind == "drain":
        shell.sched_drain()
    elif kind == "publish":
        shell.sched_publish()
    return None


def raw_answers(hac: HacFileSystem) -> dict:
    return {q: hac.engine.search(parse_query(q)).to_bytes() for q in QUERIES}


def engine_state(hac: HacFileSystem) -> dict:
    eng = hac.engine
    docs = []
    for doc_id in eng.all_docs():
        doc = eng.doc_by_id(doc_id)
        docs.append((doc_id, doc.path, doc.mtime))
    return {
        "next_doc_id": eng._next_doc_id,
        "all_docs": eng.all_docs().to_bytes(),
        "docs": sorted(docs),
    }


def check_snapshot_read(hac: HacFileSystem, version_content, context):
    """A snapshot read must reproduce its version's published answers,
    bit for bit, without draining anything."""
    drains = hac.counters.get("sched.drains")
    view = hac.engine.snapshot_view()
    assert view.version in version_content, (context, view.version)
    expected = version_content[view.version]
    for query in QUERIES:
        got = view.search(parse_query(query)).to_bytes()
        assert got == expected[query], (context, view.version, query)
    assert hac.counters.get("sched.drains") == drains, context


@pytest.mark.parametrize("seed",
                         [BASE_SEED, BASE_SEED + 1, BASE_SEED + 2])
def test_snapshot_reads_match_eager_at_publish_point(seed):
    eager, batched = build_world("eager"), build_world("batched")
    version_content = {}  # snapshot version -> answers published under it

    def sample(context):
        """Record what each new version published, and pin drain-produced
        versions to the eager oracle: whenever the batched world has no
        pending work, its published state must equal eager's *right now*
        (a forced publish with work pending legitimately republishes the
        older, last-drained state instead)."""
        eager_now = raw_answers(eager.hacfs)
        version = batched.hacfs.engine.snapshot_info()["version"]
        if version not in version_content:
            version_content[version] = raw_answers(batched.hacfs)
            if batched.hacfs.maintenance.pending == 0:
                assert version_content[version] == eager_now, context
        return eager_now

    sample("baseline")  # the settled state both worlds start from
    for step, op in enumerate(op_script(seed)):
        a = apply_op(eager, op)
        b = apply_op(batched, op)
        sample((seed, step, op))
        if op[0] == "strong_query":
            # (b) strong == the PR 5 barrier path == eager, bit-identical
            assert a == b, (seed, step, op)
            assert b == batched.glimpse(op[1]), (seed, step, op)
        if op[0] in ("snap_query", "drain", "publish"):
            # (a) snapshot reads serve the published past, drain-free
            check_snapshot_read(batched.hacfs, version_content,
                                (seed, step, op))

    # converged: one more barrier and the snapshot serves the present
    batched.hacfs.maintenance.barrier()
    final = sample((seed, "final"))
    assert engine_state(eager.hacfs) == engine_state(batched.hacfs), seed
    check_snapshot_read(batched.hacfs, version_content, (seed, "final"))
    view = batched.hacfs.engine.snapshot_view()
    assert version_content[view.version] == final, seed

    # every replica caught up — no lag left after the final publish
    status = batched.sched_status()
    assert all(lag == 0 for lag in status["replica_lag"].values()), status


def test_forced_publish_is_not_a_barrier():
    """``sched publish`` advances the version without draining: pending
    dirty docs stay pending and stay invisible to snapshot readers."""
    shell = build_world("batched")
    shell.hacfs.engine.snapshot_view()  # attach replicas first
    assert "seed.txt" in " ".join(
        shell.glimpse("baseline", consistency="snapshot"))
    before = shell.hacfs.engine.snapshot_info()["version"]

    shell.write("/mail/m0.txt", "solitary fingerprint clue\n")
    pending = shell.hacfs.maintenance.pending
    assert pending > 0
    drains = shell.hacfs.counters.get("sched.drains")

    version = shell.sched_publish()
    assert version > before
    assert shell.hacfs.maintenance.pending == pending
    assert shell.hacfs.counters.get("sched.drains") == drains
    assert shell.glimpse("clue", consistency="snapshot") == []

    shell.sched_drain()
    assert shell.glimpse("clue", consistency="snapshot") != []
