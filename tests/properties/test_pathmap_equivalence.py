"""Property: the path map is observationally identical to pure walking.

Folding the tree into a map (DESIGN.md §3i) accelerates ``namei``; it
must never change what any call returns.  Two twin worlds — one with the
map, one walk-only — run the same seeded mix of mkdir/rename/rmdir/
write/unlink/stat/listdir/read/ssync/smkdir ops with identical guards,
and every observation along the way (stat shapes, listings, file bytes,
query answers) plus the final canonical state digest must be equal.  A
crash tail arms a device fault mid-``smkdir`` and requires both worlds
to recover to the same digest, proving the map stays coherent through
journal rollback and tree undo (recovery mutates the tree through the
same invalidating operations).

``PATHMAP_SEED`` shifts the fuzz seeds (CI matrix).
"""

import os
import random
from types import SimpleNamespace

import pytest

from repro.cba.queryparser import parse_query
from repro.chaos.invariants import state_digest
from repro.core.hacfs import HacFileSystem
from repro.errors import DeviceCrashed
from repro.shell.session import HacShell
from repro.util.clock import VirtualClock
from repro.util.stats import Counters
from repro.vfs.blockdev import FaultPlan
from repro.vfs.filesystem import FileSystem

BASE_SEED = int(os.environ.get("PATHMAP_SEED", "0"))

#: candidate directories, parents before children so mkdir can build them
DIRS = ["/t/a", "/t/b", "/t/c", "/t/a/x", "/t/a/y", "/t/b/z"]
FILES = [f"f{i}.txt" for i in range(6)]
WORDS = ["fingerprint", "banana", "ridge", "recipe", "lunch", "minutiae"]
QUERIES = ["fingerprint", "ridge AND NOT banana", "recipe OR lunch"]


def build_world(path_map: bool) -> HacFileSystem:
    clock = VirtualClock()
    counters = Counters()
    fs = FileSystem(name="hac", clock=clock, counters=counters,
                    fsid="hac#pmeq", path_map=path_map)
    hac = HacFileSystem(fs=fs, clock=clock, counters=counters)
    hac.makedirs("/t")
    hac.write_file("/t/seed.txt", b"fingerprint ridge baseline\n")
    hac.clock.tick()
    hac.ssync("/")
    hac.smkdir("/fp", "fingerprint")
    return hac


def op_script(seed: int, n_ops: int = 120):
    rng = random.Random(seed)
    ops = []
    paths = DIRS + ["/t"]
    for _ in range(n_ops):
        r = rng.random()
        if r < 0.12:
            ops.append(("mkdir", rng.choice(DIRS)))
        elif r < 0.30:
            text = " ".join(rng.choices(WORDS, k=rng.randint(2, 5))) + "\n"
            ops.append(("write", rng.choice(paths), rng.choice(FILES), text))
        elif r < 0.42:
            ops.append(("mvdir", rng.choice(DIRS), rng.choice(DIRS)))
        elif r < 0.52:
            ops.append(("mvfile", rng.choice(paths), rng.choice(FILES),
                        rng.choice(paths), rng.choice(FILES)))
        elif r < 0.58:
            ops.append(("rmdir", rng.choice(DIRS)))
        elif r < 0.64:
            ops.append(("rm", rng.choice(paths), rng.choice(FILES)))
        elif r < 0.78:
            ops.append(("stat", rng.choice(paths), rng.choice(FILES)))
        elif r < 0.86:
            ops.append(("listdir", rng.choice(paths)))
        elif r < 0.92:
            ops.append(("query", rng.choice(QUERIES)))
        else:
            ops.append(("ssync",))
    ops.append(("ssync",))
    ops.append(("query", QUERIES[0]))
    return ops


def apply_op(hac: HacFileSystem, op):
    """Run one scripted op; guards depend only on tree state, which the
    twins share, so no-ops line up too.  Returns the observation (or
    None for mutators)."""
    kind = op[0]
    if kind == "mkdir":
        path = op[1]
        parent = path.rsplit("/", 1)[0] or "/"
        if not hac.exists(path) and hac.isdir(parent):
            hac.mkdir(path)
    elif kind == "write":
        if hac.isdir(op[1]) and not hac.isdir(f"{op[1]}/{op[2]}"):
            hac.write_file(f"{op[1]}/{op[2]}", op[3].encode())
            hac.clock.tick()
    elif kind == "mvdir":
        src, dst = op[1], op[2]
        dparent = dst.rsplit("/", 1)[0] or "/"
        if (src != dst and hac.isdir(src) and not hac.exists(dst)
                and hac.isdir(dparent)
                and not dst.startswith(src + "/")
                and not dparent.startswith(src)):
            hac.rename(src, dst)
    elif kind == "mvfile":
        src, dst = f"{op[1]}/{op[2]}", f"{op[3]}/{op[4]}"
        if (src != dst and hac.isfile(src) and not hac.exists(dst)
                and hac.isdir(op[3])):
            hac.rename(src, dst)
    elif kind == "rmdir":
        path = op[1]
        if hac.isdir(path) and not hac.listdir(path):
            hac.rmdir(path)
    elif kind == "rm":
        path = f"{op[1]}/{op[2]}"
        if hac.isfile(path):
            hac.unlink(path)
    elif kind == "stat":
        path = f"{op[1]}/{op[2]}"
        if hac.isfile(path):
            return ("file", hac.read_file(path))
        return ("nofile", hac.exists(path))
    elif kind == "listdir":
        if hac.isdir(op[1]):
            return sorted(hac.listdir(op[1]))
        return None
    elif kind == "query":
        ast = parse_query(op[1], resolve_dir=hac.dirmap.uid_of)
        return hac.engine.search(ast).to_bytes()
    elif kind == "ssync":
        hac.clock.tick()
        hac.ssync("/")
    return None


def as_world(hac: HacFileSystem) -> SimpleNamespace:
    return SimpleNamespace(hac=hac, shell=HacShell(hac))


@pytest.mark.parametrize("seed",
                         [BASE_SEED, BASE_SEED + 1, BASE_SEED + 2])
def test_map_world_is_bit_identical_to_walk_world(seed):
    mapped, walked = build_world(True), build_world(False)
    for op in op_script(seed):
        a = apply_op(mapped, op)
        b = apply_op(walked, op)
        assert a == b, (seed, op)

    assert state_digest(as_world(mapped), queries=QUERIES) == \
        state_digest(as_world(walked), queries=QUERIES), seed

    # the map actually served the hot path, and coherence events fired
    c, w = mapped.counters, walked.counters
    assert c.get("pathmap.hit") > 0, seed
    assert c.get("pathmap.invalidated") > 0, seed
    assert w.get("pathmap.hit") == w.get("pathmap.insert") == 0, seed
    # folding the tree into the map must shed walk steps, not add them
    assert c.get("vfs.walk_steps") < w.get("vfs.walk_steps"), seed


@pytest.mark.parametrize("seed", [BASE_SEED, BASE_SEED + 1])
def test_crash_recovery_converges_identically(seed):
    """Crash both twins inside a journaled ``smkdir``, restore, and
    require the same canonical state digest — recovery's tree undo goes
    through the same invalidating fs operations, so the map never
    outlives a rolled-back resolution."""
    mapped, walked = build_world(True), build_world(False)
    for op in op_script(seed)[:60]:
        apply_op(mapped, op)
        apply_op(walked, op)
    restored = []
    for hac in (mapped, walked):
        dev = hac.fs.device
        dev.set_fault_plan(
            FaultPlan(crash_at=dev.record_write_index + 2 + seed % 3))
        with pytest.raises(DeviceCrashed):
            hac.smkdir("/ridge", "ridge")
            hac.ssync("/")
        revived = HacFileSystem.restore(hac.fs)
        assert [f for f in revived.fsck() if f.severity == "error"] == [], \
            seed
        restored.append(as_world(revived))
    assert state_digest(restored[0], queries=QUERIES) == \
        state_digest(restored[1], queries=QUERIES), seed
