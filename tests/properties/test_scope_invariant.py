"""Property test: the §2.3 scope invariant holds under random histories.

After ANY sequence of file-system mutations followed by a full ``ssync``,
every semantic directory ``sd`` must satisfy:

1. transient(sd) ⊆ scope provided by sd's parent, and
2. transient(sd) = {f in parent scope : f matches sd's query}
   − permanent(sd) − prohibited(sd).

We drive a HAC file system with hypothesis-chosen operation sequences
(writes, unlinks, renames, link edits, query changes) against a fixed
topology of semantic directories, then check the invariant exhaustively.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cba import agrep
from repro.core.hacfs import HacFileSystem
from repro.util import pathutil

WORDS = ["alpha", "beta", "gamma", "fingerprint", "kernel"]

ops = st.lists(
    st.tuples(st.sampled_from(["write", "unlink", "rename", "rmlink",
                               "addlink", "requery", "tick"]),
              st.integers(min_value=0, max_value=9),
              st.integers(min_value=0, max_value=4)),
    max_size=14)


def apply_op(hac, op, a, b, rng):
    kind = op
    try:
        if kind == "write":
            text = " ".join(rng.choices(WORDS, k=rng.randint(2, 8)))
            hac.write_file(f"/files/f{a}.txt", (text + "\n").encode())
        elif kind == "unlink":
            path = f"/files/f{a}.txt"
            if hac.isfile(path):
                hac.unlink(path)
        elif kind == "rename":
            src, dst = f"/files/f{a}.txt", f"/files/g{a}_{b}.txt"
            if hac.isfile(src) and not hac.exists(dst, follow=False):
                hac.rename(src, dst)
        elif kind == "rmlink":
            sd = ["/sem1", "/sem1/sub", "/sem2"][a % 3]
            names = sorted(hac.links(sd))
            if names:
                hac.unlink(f"{sd}/{names[b % len(names)]}")
        elif kind == "addlink":
            sd = ["/sem1", "/sem2"][a % 2]
            target = f"/files/f{b}.txt"
            link = f"{sd}/manual{a}_{b}"
            if hac.isfile(target) and not hac.exists(link, follow=False):
                hac.symlink(target, link)
        elif kind == "requery":
            sd = ["/sem1", "/sem1/sub", "/sem2"][a % 3]
            hac.set_query(sd, WORDS[b % len(WORDS)])
        elif kind == "tick":
            hac.clock.tick()
    except Exception:
        raise


def oracle_match(hac, node, doc_id, text):
    """Independent per-document query oracle (the production evaluator is
    set-based; this one decides one document at a time)."""
    from repro.cba import queryast as qa

    if isinstance(node, qa.DirRef):
        return doc_id in set(hac.scopes.provided_by_uid(node.uid).local)
    if isinstance(node, qa.And):
        return all(oracle_match(hac, c, doc_id, text) for c in node.children)
    if isinstance(node, qa.Or):
        return any(oracle_match(hac, c, doc_id, text) for c in node.children)
    if isinstance(node, qa.Not):
        return not oracle_match(hac, node.child, doc_id, text)
    return agrep.matches(text, node)


def check_invariant(hac):
    for sd_path in hac.semantic_dirs():
        uid = hac.dirmap.uid_of(sd_path)
        state = hac.meta.require(uid)
        parent_scope = hac.scopes.provided(pathutil.dirname(sd_path))
        scope_docs = set(parent_scope.local)
        permanent = set(state.links.permanent.values())
        prohibited = state.links.prohibited
        transient = set(state.links.transient.values())

        # clause 1: transient targets lie inside the parent scope; remote
        # targets must come from a name space the scope reaches
        reachable_namespaces = (parent_scope.namespaces
                                | {r.namespace for r in parent_scope.remote})
        for target in transient:
            if target.is_local:
                doc_id = hac.engine.doc_id_of(target.key)
                assert doc_id in scope_docs, (sd_path, target)
            else:
                assert target.realm in reachable_namespaces, (sd_path, target)

        # clause 2 (local side): exactly the matching, non-permanent,
        # non-prohibited files
        expected = set()
        for doc_id in scope_docs:
            doc = hac.engine.doc_by_id(doc_id)
            text = hac.engine.loader(doc.key)
            if oracle_match(hac, state.query, doc_id, text):
                from repro.core.links import Target
                target = Target.local(doc.key[0], doc.key[1])
                if target not in permanent and target not in prohibited:
                    expected.add(target)
        local_transient = {t for t in transient if t.is_local}
        assert local_transient == expected, sd_path

        # materialisation agrees with the state
        entries = set(hac.listdir(sd_path))
        for name in state.links.names():
            assert name in entries, (sd_path, name)


@settings(max_examples=25, deadline=None)
@given(ops, st.integers(min_value=0, max_value=99))
def test_scope_invariant_after_random_history(op_list, seed):
    rng = random.Random(seed)
    hac = HacFileSystem()
    hac.makedirs("/files")
    for i in range(6):
        text = " ".join(rng.choices(WORDS, k=6))
        hac.write_file(f"/files/f{i}.txt", (text + "\n").encode())
    hac.clock.tick()
    hac.ssync("/")
    hac.smkdir("/sem1", "fingerprint OR alpha")
    hac.smkdir("/sem1/sub", "kernel OR alpha OR fingerprint")
    hac.smkdir("/sem2", "beta OR /sem1")

    for op, a, b in op_list:
        apply_op(hac, op, a, b, rng)

    hac.clock.tick()
    hac.ssync("/")
    check_invariant(hac)


@settings(max_examples=10, deadline=None)
@given(ops)
def test_prohibitions_never_resurface(op_list):
    """Whatever happens, a prohibited target never reappears as transient."""
    rng = random.Random(1)
    hac = HacFileSystem()
    hac.makedirs("/files")
    for i in range(4):
        hac.write_file(f"/files/f{i}.txt", b"alpha beta\n")
    hac.clock.tick()
    hac.ssync("/")
    hac.smkdir("/sem1", "alpha")
    hac.smkdir("/sem2", "beta")  # apply_op targets it too
    victim = sorted(hac.links("/sem1"))[0]
    hac.unlink(f"/sem1/{victim}")
    uid = hac.dirmap.uid_of("/sem1")
    tombstones = set(hac.meta.require(uid).links.prohibited)
    assert tombstones

    for op, a, b in op_list:
        if op in ("rmlink", "requery"):
            continue  # keep /sem1's own curation fixed for this property
        apply_op(hac, op, a, b, rng)
    hac.clock.tick()
    hac.ssync("/")
    state = hac.meta.require(uid)
    assert not (set(state.links.transient.values()) & tombstones)
