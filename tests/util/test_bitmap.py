"""Unit tests for the N/8-byte bitmap representation."""

import pytest

from repro.util.bitmap import Bitmap


class TestBasics:
    def test_empty(self):
        bm = Bitmap()
        assert len(bm) == 0
        assert not bm
        assert list(bm) == []
        assert bm.nbytes == 0
        assert bm.max_id() == -1

    def test_add_and_contains(self):
        bm = Bitmap()
        bm.add(0)
        bm.add(7)
        bm.add(8)
        bm.add(1000)
        assert 0 in bm and 7 in bm and 8 in bm and 1000 in bm
        assert 1 not in bm and 999 not in bm
        assert len(bm) == 4

    def test_construct_from_iterable(self):
        assert sorted(Bitmap([5, 3, 3, 9])) == [3, 5, 9]

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            Bitmap().add(-1)

    def test_negative_contains_false(self):
        assert -3 not in Bitmap([1])

    def test_discard(self):
        bm = Bitmap([1, 2, 3])
        bm.discard(2)
        bm.discard(99)   # absent: no-op
        bm.discard(-1)   # negative: no-op
        assert sorted(bm) == [1, 3]

    def test_discard_trims_trailing_bytes(self):
        bm = Bitmap([1, 900])
        bm.discard(900)
        assert bm.nbytes == 1

    def test_iteration_order_ascending(self):
        ids = [977, 2, 64, 63, 8, 0]
        assert list(Bitmap(ids)) == sorted(ids)

    def test_max_id(self):
        assert Bitmap([3, 77, 12]).max_id() == 77

    def test_nbytes_is_ceil_div_8(self):
        assert Bitmap([15]).nbytes == 2
        assert Bitmap([16]).nbytes == 3
        # the paper's example: ~17,000 files -> ~2 KB
        assert Bitmap([16999]).nbytes == 2125


class TestAlgebra:
    def test_or(self):
        assert sorted(Bitmap([1, 2]) | Bitmap([2, 300])) == [1, 2, 300]

    def test_and(self):
        assert sorted(Bitmap([1, 2, 300]) & Bitmap([2, 300, 5])) == [2, 300]

    def test_sub(self):
        assert sorted(Bitmap([1, 2, 3]) - Bitmap([2, 999])) == [1, 3]

    def test_inplace_or(self):
        bm = Bitmap([1])
        bm |= Bitmap([900])
        assert sorted(bm) == [1, 900]

    def test_inplace_and(self):
        bm = Bitmap([1, 2, 900])
        bm &= Bitmap([2, 900])
        assert sorted(bm) == [2, 900]

    def test_inplace_sub(self):
        bm = Bitmap([1, 2, 900])
        bm -= Bitmap([900])
        assert sorted(bm) == [1, 2]
        assert bm.nbytes == 1  # trimmed

    def test_operands_not_mutated(self):
        a, b = Bitmap([1]), Bitmap([2])
        _ = a | b
        _ = a & b
        _ = a - b
        assert sorted(a) == [1] and sorted(b) == [2]

    def test_intersects(self):
        assert Bitmap([5, 100]).intersects(Bitmap([100]))
        assert not Bitmap([5]).intersects(Bitmap([6]))
        assert not Bitmap().intersects(Bitmap([1]))

    def test_issubset(self):
        assert Bitmap([2, 900]).issubset(Bitmap([1, 2, 900]))
        assert not Bitmap([2, 901]).issubset(Bitmap([1, 2, 900]))
        assert Bitmap().issubset(Bitmap())
        assert Bitmap().issubset(Bitmap([1]))

    def test_equality_ignores_allocation_history(self):
        a = Bitmap([1, 900])
        a.discard(900)
        assert a == Bitmap([1])
        assert hash(a) == hash(Bitmap([1]))

    def test_copy_is_independent(self):
        a = Bitmap([1])
        b = a.copy()
        b.add(2)
        assert 2 not in a


class TestSerialization:
    def test_roundtrip(self):
        bm = Bitmap([0, 9, 100, 8191])
        assert Bitmap.from_bytes(bm.to_bytes()) == bm

    def test_from_bytes_trims(self):
        bm = Bitmap.from_bytes(b"\x01\x00\x00")
        assert bm.nbytes == 1
        assert list(bm) == [0]

    def test_repr_small_and_large(self):
        assert "1" in repr(Bitmap([1]))
        assert "ids" in repr(Bitmap(range(50)))
