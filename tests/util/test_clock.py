"""Unit tests for the virtual clock and its timers."""

import pytest

from repro.util.clock import VirtualClock


class TestAdvance:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_and_tick(self):
        c = VirtualClock()
        c.advance(2.5)
        c.tick()
        assert c.now == 3.5

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)


class TestTimers:
    def test_one_shot_fires_once(self):
        c = VirtualClock()
        fired = []
        c.schedule(5.0, lambda: fired.append(c.now), name="t")
        c.advance(4.9)
        assert fired == []
        c.advance(0.2)
        assert fired == [5.0]
        c.advance(100)
        assert fired == [5.0]

    def test_periodic_fires_repeatedly(self):
        c = VirtualClock()
        fired = []
        c.schedule_periodic(10.0, lambda: fired.append(c.now))
        c.advance(35)
        assert fired == [10.0, 20.0, 30.0]

    def test_periodic_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            VirtualClock().schedule_periodic(0, lambda: None)

    def test_cancel(self):
        c = VirtualClock()
        fired = []
        t = c.schedule_periodic(1.0, lambda: fired.append(1))
        c.advance(2)
        t.cancel()
        c.advance(10)
        assert len(fired) == 2

    def test_cancel_from_inside_callback(self):
        c = VirtualClock()
        fired = []
        timer = c.schedule_periodic(1.0, lambda: (fired.append(1),
                                                  timer.cancel()))
        c.advance(5)
        assert len(fired) == 1

    def test_firing_order_respects_deadlines(self):
        c = VirtualClock()
        order = []
        c.schedule(3.0, lambda: order.append("b"))
        c.schedule(1.0, lambda: order.append("a"))
        c.schedule(2.0, lambda: order.append("m"))
        c.advance(5)
        assert order == ["a", "m", "b"]

    def test_callback_sees_fire_time(self):
        c = VirtualClock()
        seen = []
        c.schedule(2.0, lambda: seen.append(c.now))
        c.advance(10)
        assert seen == [2.0]

    def test_pending_lists_live_timers(self):
        c = VirtualClock()
        t1 = c.schedule(5.0, lambda: None, name="x")
        t2 = c.schedule(1.0, lambda: None, name="y")
        t1.cancel()
        names = [t.name for t in c.pending()]
        assert names == ["y"]
        assert "one-shot" in repr(t2)
