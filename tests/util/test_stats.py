"""Unit tests for instrumentation counters."""

from repro.util.stats import Counters


class TestCounters:
    def test_add_and_get(self):
        c = Counters()
        c.add("vfs.namei")
        c.add("vfs.namei", 2)
        assert c.get("vfs.namei") == 3
        assert c.get("absent") == 0

    def test_total_prefix(self):
        c = Counters()
        c.add("io.read", 2)
        c.add("io.write", 3)
        c.add("iox", 100)  # must NOT be counted under "io"
        assert c.total("io") == 5

    def test_scoped(self):
        c = Counters()
        s = c.scoped("glimpse")
        s.add("scans", 4)
        assert c.get("glimpse.scans") == 4
        deeper = s.scoped("blocks")
        deeper.add("hits")
        assert c.get("glimpse.blocks.hits") == 1
        assert s.get("scans") == 4

    def test_snapshot_diff(self):
        c = Counters()
        c.add("x", 1)
        before = c.snapshot()
        c.add("x", 2)
        c.add("y", 5)
        diff = c.diff(before)
        assert diff == {"x": 2, "y": 5}

    def test_reset(self):
        c = Counters()
        c.add("x")
        c.reset()
        assert c.get("x") == 0

    def test_items_sorted(self):
        c = Counters()
        c.add("b")
        c.add("a")
        assert [k for k, _v in c.items()] == ["a", "b"]

    def test_repr(self):
        c = Counters()
        c.add("n", 2)
        assert "n=2" in repr(c)

    def test_total_counts_exact_name_and_trailing_dot(self):
        c = Counters()
        c.add("io", 1)          # exact name counts
        c.add("io.read", 2)
        assert c.total("io") == 3
        assert c.total("io.") == 2  # a trailing dot means prefix-only

    def test_diff_ignores_unchanged(self):
        c = Counters()
        c.add("x", 1)
        c.add("y", 1)
        before = c.snapshot()
        c.add("y", 4)
        assert c.diff(before) == {"y": 4}

    def test_snapshot_is_independent(self):
        c = Counters()
        c.add("x", 1)
        snap = c.snapshot()
        c.add("x", 1)
        assert snap == {"x": 1}
        snap["x"] = 99          # mutating the snapshot must not leak back
        assert c.get("x") == 2


class TestScopedCounters:
    def test_get_through_scope(self):
        c = Counters()
        c.add("rpc.search.calls", 3)
        assert c.scoped("rpc").scoped("search").get("calls") == 3

    def test_trailing_dot_in_prefix_is_normalised(self):
        c = Counters()
        c.scoped("glimpse.").add("scans")
        assert c.get("glimpse.scans") == 1
