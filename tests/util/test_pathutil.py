"""Unit tests for lexical path algebra."""

import pytest

from repro.util import pathutil as P


class TestNormalize:
    def test_collapses_slashes_and_dots(self):
        assert P.normalize("/a//b/./c/") == "/a/b/c"

    def test_root(self):
        assert P.normalize("///") == "/"
        assert P.normalize("/") == "/"

    def test_keeps_dotdot(self):
        # ".." must survive normalisation: only the VFS may resolve it
        assert P.normalize("/a/../b") == "/a/../b"

    def test_rejects_relative(self):
        with pytest.raises(ValueError):
            P.normalize("a/b")


class TestSplitJoin:
    def test_split(self):
        assert P.split("/a/b/c") == ("/a/b", "c")
        assert P.split("/a") == ("/", "a")
        assert P.split("/") == ("/", "")

    def test_basename_dirname(self):
        assert P.basename("/x/y.txt") == "y.txt"
        assert P.dirname("/x/y.txt") == "/x"
        assert P.dirname("/x") == "/"

    def test_join(self):
        assert P.join("/a", "b", "c") == "/a/b/c"
        assert P.join("/", "b") == "/b"
        assert P.join("/a/", "b") == "/a/b"

    def test_join_absolute_resets(self):
        assert P.join("/a", "/x", "y") == "/x/y"

    def test_join_skips_empty(self):
        assert P.join("/a", "", "b") == "/a/b"

    def test_components(self):
        assert P.split_components("/a//b/./c") == ["a", "b", "c"]
        assert P.split_components("/") == []


class TestAncestry:
    def test_is_ancestor_strict(self):
        assert P.is_ancestor("/a/b", "/a/b/c")
        assert not P.is_ancestor("/a/b", "/a/b")
        assert P.is_ancestor("/a/b", "/a/b", strict=False)

    def test_prefix_confusion(self):
        # "/a/b" is NOT an ancestor of "/a/bc"
        assert not P.is_ancestor("/a/b", "/a/bc")

    def test_root_is_ancestor_of_everything(self):
        assert P.is_ancestor("/", "/x")
        assert not P.is_ancestor("/", "/")

    def test_relative_to(self):
        assert P.relative_to("/a/b/c", "/a") == "b/c"
        assert P.relative_to("/a", "/a") == ""
        assert P.relative_to("/x", "/") == "x"
        with pytest.raises(ValueError):
            P.relative_to("/x", "/y")

    def test_rebase(self):
        assert P.rebase("/a/b/c", "/a/b", "/x") == "/x/c"
        assert P.rebase("/a/b", "/a/b", "/x") == "/x"

    def test_ancestors(self):
        assert list(P.ancestors("/a/b/c")) == ["/", "/a", "/a/b"]
        assert list(P.ancestors("/")) == []

    def test_depth(self):
        assert P.depth("/") == 0
        assert P.depth("/a/b") == 2
