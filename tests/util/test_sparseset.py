"""Unit tests for the Roaring-style sparse set (§4 future work)."""

import pytest

from repro.util.sparseset import CHUNK_SIZE, DENSE_THRESHOLD, SparseSet


class TestBasics:
    def test_empty(self):
        s = SparseSet()
        assert len(s) == 0 and not s
        assert list(s) == []
        assert s.max_id() == -1
        assert s.nbytes == 0

    def test_add_contains_discard(self):
        s = SparseSet([1, 70000, 5])
        assert 1 in s and 70000 in s and 5 in s and 6 not in s
        s.discard(70000)
        assert 70000 not in s
        s.discard(70000)  # idempotent
        s.discard(-1)     # no-op
        assert sorted(s) == [1, 5]

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            SparseSet().add(-1)
        assert -5 not in SparseSet([1])

    def test_iteration_sorted_across_chunks(self):
        ids = [3, CHUNK_SIZE + 1, 2 * CHUNK_SIZE, 7, CHUNK_SIZE - 1]
        assert list(SparseSet(ids)) == sorted(ids)

    def test_max_id(self):
        assert SparseSet([3, 900000, 12]).max_id() == 900000

    def test_empty_chunks_pruned(self):
        s = SparseSet([CHUNK_SIZE * 3 + 5])
        s.discard(CHUNK_SIZE * 3 + 5)
        assert s.nbytes == 0


class TestRepresentationSwitch:
    def test_promotes_to_bitmap_when_dense(self):
        s = SparseSet()
        sparse_bytes = None
        for i in range(DENSE_THRESHOLD + 10):
            s.add(i)
            if i == 100:
                sparse_bytes = s.nbytes
        # dense chunk is capped at the 8 KiB bitmap + directory
        assert s.nbytes <= CHUNK_SIZE // 8 + 6
        assert sparse_bytes == 6 + 2 * 101
        assert len(s) == DENSE_THRESHOLD + 10
        assert all(i in s for i in range(0, DENSE_THRESHOLD + 10, 97))

    def test_demotes_back_when_sparse(self):
        s = SparseSet(range(DENSE_THRESHOLD + 10))
        for i in range(DENSE_THRESHOLD + 10):
            if i % 50:
                s.discard(i)
        # ~82 members left: array representation again
        assert s.nbytes < 1000
        assert sorted(s) == [i for i in range(DENSE_THRESHOLD + 10)
                             if i % 50 == 0]


class TestAlgebra:
    def test_or_and_sub(self):
        a = SparseSet([1, 2, CHUNK_SIZE + 5])
        b = SparseSet([2, CHUNK_SIZE + 5, 9])
        assert sorted(a | b) == [1, 2, 9, CHUNK_SIZE + 5]
        assert sorted(a & b) == [2, CHUNK_SIZE + 5]
        assert sorted(a - b) == [1]

    def test_subset_and_intersects(self):
        a = SparseSet([1, CHUNK_SIZE])
        b = SparseSet([1, 2, CHUNK_SIZE])
        assert a.issubset(b) and not b.issubset(a)
        assert a.intersects(b)
        assert not SparseSet([5]).intersects(SparseSet([6]))

    def test_copy_independent(self):
        a = SparseSet([1])
        b = a.copy()
        b.add(2)
        assert 2 not in a

    def test_equality(self):
        assert SparseSet([1, 2]) == SparseSet([2, 1])
        assert SparseSet([1]) != SparseSet([1, 2])


class TestSerialization:
    def test_roundtrip_sparse(self):
        s = SparseSet([0, 5, 10 ** 6, 10 ** 7])
        assert SparseSet.from_bytes(s.to_bytes()) == s

    def test_roundtrip_dense_chunk(self):
        s = SparseSet(range(DENSE_THRESHOLD * 2))
        assert SparseSet.from_bytes(s.to_bytes()) == s

    def test_trailing_garbage_rejected(self):
        data = SparseSet([1]).to_bytes() + b"x"
        with pytest.raises(ValueError):
            SparseSet.from_bytes(data)


class TestThePointOfItAll:
    def test_sparse_result_over_huge_id_space(self):
        """Three links among ten million files: bytes, not megabytes."""
        from repro.util.bitmap import Bitmap
        ids = [17, 4_999_999, 9_999_999]
        sparse = SparseSet(ids)
        flat = Bitmap(ids)
        assert flat.nbytes == 1_250_000       # N/8: what the paper ships
        assert sparse.nbytes < 64             # what its future work wants
        assert sorted(sparse) == sorted(flat)
