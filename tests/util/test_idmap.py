"""Unit tests for the global UID ↔ path map (the §2.5 rename fix)."""

import pytest

from repro.util.idmap import GlobalDirectoryMap


@pytest.fixture
def gm():
    m = GlobalDirectoryMap()
    m.register("/a")
    m.register("/a/b")
    m.register("/a/b/c")
    m.register("/x")
    return m


class TestRegistration:
    def test_root_preregistered(self):
        m = GlobalDirectoryMap()
        assert m.uid_of("/") == 0
        assert m.path_of(0) == "/"

    def test_register_allocates_fresh_uids(self, gm):
        uids = [gm.uid_of(p) for p in ("/a", "/a/b", "/a/b/c", "/x")]
        assert len(set(uids)) == 4
        assert all(u > 0 for u in uids)

    def test_duplicate_registration_rejected(self, gm):
        with pytest.raises(ValueError):
            gm.register("/a")

    def test_unregister(self, gm):
        uid = gm.unregister("/x")
        assert gm.uid_of("/x") is None
        assert gm.path_of(uid) is None

    def test_uids_never_reused(self, gm):
        gone = gm.unregister("/x")
        fresh = gm.register("/y")
        assert fresh != gone

    def test_contains_and_len(self, gm):
        assert "/a/b" in gm
        assert "/nope" not in gm
        assert len(gm) == 5  # root + 4


class TestRename:
    def test_rename_updates_whole_subtree(self, gm):
        uid_b = gm.uid_of("/a/b")
        uid_c = gm.uid_of("/a/b/c")
        moved = gm.rename_subtree("/a/b", "/moved")
        assert {(u, old) for u, old, _new in moved} == {
            (uid_b, "/a/b"), (uid_c, "/a/b/c")}
        assert gm.path_of(uid_b) == "/moved"
        assert gm.path_of(uid_c) == "/moved/c"
        assert gm.uid_of("/a/b") is None

    def test_uids_stable_across_rename(self, gm):
        uid = gm.uid_of("/a/b/c")
        gm.rename_subtree("/a", "/z")
        assert gm.uid_of("/z/b/c") == uid

    def test_rename_root_rejected(self, gm):
        with pytest.raises(ValueError):
            gm.rename_subtree("/", "/y")

    def test_rename_collision_rejected(self, gm):
        with pytest.raises(ValueError):
            gm.rename_subtree("/a/b", "/x")

    def test_prefix_sibling_untouched(self, gm):
        gm.register("/ab")
        gm.rename_subtree("/a", "/q")
        assert gm.uid_of("/ab") is not None


class TestSubtreeAndSnapshot:
    def test_subtree_uids(self, gm):
        subtree = set(gm.subtree_uids("/a"))
        assert subtree == {gm.uid_of("/a"), gm.uid_of("/a/b"), gm.uid_of("/a/b/c")}
        strict = set(gm.subtree_uids("/a", strict=True))
        assert gm.uid_of("/a") not in strict

    def test_snapshot_restore_roundtrip(self, gm):
        snap = gm.snapshot()
        restored = GlobalDirectoryMap.restore(snap)
        assert restored.uid_of("/a/b/c") == gm.uid_of("/a/b/c")
        # the allocator must not clash with restored uids
        fresh = restored.register("/new")
        assert fresh not in snap

    def test_restore_reinstates_root(self):
        restored = GlobalDirectoryMap.restore({5: "/only"})
        assert restored.uid_of("/") == 0
