"""Unit tests for the bounded LRU mapping."""

import pytest

from repro.util.lru import LRUCache


class TestLRU:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_put_get(self):
        c = LRUCache(2)
        c.put("a", 1)
        assert c.get("a") == 1
        assert c.get("missing") is None
        assert c.get("missing", 42) == 42

    def test_eviction_is_lru(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")            # refresh a
        evicted = c.put("c", 3)
        assert evicted == ("b", 2)
        assert "a" in c and "c" in c and "b" not in c

    def test_put_refresh_does_not_evict(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        assert c.put("a", 10) is None
        assert c.get("a") == 10
        assert len(c) == 2

    def test_invalidate(self):
        c = LRUCache(2)
        c.put("a", 1)
        assert c.invalidate("a") is True
        assert c.invalidate("a") is False
        assert c.get("a") is None

    def test_stats(self):
        c = LRUCache(1)
        c.put("a", 1)
        c.get("a")
        c.get("b")
        c.put("c", 1)
        assert c.hits == 1 and c.misses == 1 and c.evictions == 1
        assert c.hit_rate == 0.5

    def test_hit_rate_empty(self):
        assert LRUCache(1).hit_rate == 0.0

    def test_clear_and_iter(self):
        c = LRUCache(3)
        c.put("a", 1)
        c.put("b", 2)
        assert sorted(c) == ["a", "b"]
        c.clear()
        assert len(c) == 0
