"""Unit tests for the MetaStore record codec."""

import pytest

from repro.util.serialization import SerializationError, dumps, loads


class TestRoundtrip:
    @pytest.mark.parametrize("value", [
        None, True, False,
        0, 1, -1, 255, -256, 2 ** 70, -(2 ** 70),
        0.0, 3.5, -2.25,
        "", "hello", "päth/ünïcode",
        b"", b"\x00\xff raw",
        [], [1, "two", None, [3.0]],
        {}, {"k": 1, "nested": {"a": [True, b"x"]}},
    ])
    def test_roundtrip(self, value):
        assert loads(dumps(value)) == value

    def test_tuple_becomes_list(self):
        assert loads(dumps((1, 2))) == [1, 2]

    def test_bytearray_becomes_bytes(self):
        assert loads(dumps(bytearray(b"ab"))) == b"ab"

    def test_bool_not_confused_with_int(self):
        assert loads(dumps(True)) is True
        assert loads(dumps(1)) == 1
        assert loads(dumps(1)) is not True


class TestErrors:
    def test_unsupported_type(self):
        with pytest.raises(SerializationError):
            dumps(object())

    def test_non_string_dict_key(self):
        with pytest.raises(SerializationError):
            dumps({1: "x"})

    def test_truncated(self):
        data = dumps("hello")
        with pytest.raises(SerializationError):
            loads(data[:-1])

    def test_trailing_garbage(self):
        with pytest.raises(SerializationError):
            loads(dumps(1) + b"junk")

    def test_unknown_tag(self):
        with pytest.raises(SerializationError):
            loads(b"Zxxxx")

    def test_empty_input(self):
        with pytest.raises(SerializationError):
            loads(b"")
