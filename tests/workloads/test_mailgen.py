"""The synthetic mail generator."""

from repro.core.hacfs import HacFileSystem
from repro.workloads.mailgen import MailGenerator
from repro.workloads.trees import build_random_tree, random_ops

import random


class TestMailGenerator:
    def test_deterministic(self):
        a, b = MailGenerator(seed=3), MailGenerator(seed=3)
        assert a.render(7) == b.render(7)

    def test_headers_present(self):
        headers, body = MailGenerator().message(0)
        assert set(headers) == {"From", "To", "Subject", "Date"}
        assert headers["From"] != headers["To"]
        assert body

    def test_topic_rotation(self):
        gen = MailGenerator(topics=("a", "b"))
        assert gen.topic_of(0) == "a" and gen.topic_of(1) == "b"
        assert gen.topic_of(0) in gen.message(0)[0]["Subject"]

    def test_topic_word_in_body(self):
        gen = MailGenerator()
        for i in range(5):
            _h, body = gen.message(i)
            assert gen.topic_of(i) in body.split()

    def test_populate(self):
        hac = HacFileSystem()
        paths = MailGenerator().populate(hac, "/mail", count=6)
        assert len(paths) == 6
        assert hac.read_file(paths[0]).startswith(b"From: ")


class TestRandomTrees:
    def test_build_random_tree(self):
        hac = HacFileSystem()
        dirs, files = build_random_tree(hac, seed=1)
        assert all(hac.isdir(d) for d in dirs)
        assert all(hac.isfile(f) for f in files)

    def test_random_ops_keep_model_in_sync(self):
        hac = HacFileSystem()
        dirs, files = build_random_tree(hac, seed=2)
        rng = random.Random(9)
        log = random_ops(hac, rng, dirs, files, count=30)
        assert log
        for f in files:
            assert hac.exists(f, follow=False), f
        for d in dirs:
            assert hac.isdir(d), d
