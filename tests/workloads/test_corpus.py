"""The synthetic corpus generator: determinism and selectivity control."""

import pytest

from repro.core.hacfs import HacFileSystem
from repro.workloads.corpus import CorpusConfig, CorpusGenerator


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        a = CorpusGenerator(CorpusConfig(n_files=10, seed=5))
        b = CorpusGenerator(CorpusConfig(n_files=10, seed=5))
        assert dict(a.documents()) == dict(b.documents())

    def test_different_seed_differs(self):
        a = CorpusGenerator(CorpusConfig(n_files=10, seed=5))
        b = CorpusGenerator(CorpusConfig(n_files=10, seed=6))
        assert dict(a.documents()) != dict(b.documents())

    def test_document_stable_across_calls(self):
        gen = CorpusGenerator(CorpusConfig(n_files=5))
        assert gen.document(3) == gen.document(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            CorpusConfig(n_files=0)


class TestTopics:
    def test_topic_fraction_respected(self):
        cfg = CorpusConfig(n_files=200, topics={"fingerprint": 0.1}, seed=1)
        gen = CorpusGenerator(cfg)
        carriers = [i for i in range(200) if "fingerprint" in gen.document(i)]
        assert carriers == gen.topic_files("fingerprint")
        assert len(carriers) == 20

    def test_topic_word_absent_from_background(self):
        cfg = CorpusConfig(n_files=50, topics={"fingerprint": 0.1}, seed=2)
        gen = CorpusGenerator(cfg)
        non_carriers = set(range(50)) - set(gen.topic_files("fingerprint"))
        for i in list(non_carriers)[:10]:
            assert "fingerprint" not in gen.document(i)

    def test_multiple_topics_independent(self):
        cfg = CorpusConfig(n_files=100,
                           topics={"alphatopic": 0.05, "betatopic": 0.5})
        gen = CorpusGenerator(cfg)
        assert len(gen.topic_files("alphatopic")) == 5
        assert len(gen.topic_files("betatopic")) == 50

    def test_topic_repeats_in_document(self):
        cfg = CorpusConfig(n_files=10, topics={"mark": 1.0}, topic_repeats=3)
        gen = CorpusGenerator(cfg)
        assert gen.document(0).split().count("mark") == 3


class TestMaterialisation:
    def test_populate_into_hacfs(self):
        hac = HacFileSystem()
        gen = CorpusGenerator(CorpusConfig(n_files=12, dirs=3))
        paths = gen.populate(hac, "/corpus")
        assert len(paths) == 12
        assert all(hac.isfile(p) for p in paths)
        assert len(hac.listdir("/corpus")) == 3

    def test_searchable_after_sync(self):
        hac = HacFileSystem()
        gen = CorpusGenerator(CorpusConfig(n_files=30, dirs=2,
                                           topics={"fingerprint": 0.2}))
        gen.populate(hac, "/c")
        hac.clock.tick()
        hac.ssync("/")
        hac.smkdir("/fp", "fingerprint")
        assert len(hac.links("/fp")) == len(gen.topic_files("fingerprint"))

    def test_as_dict_for_remote_services(self):
        gen = CorpusGenerator(CorpusConfig(n_files=4))
        docs = gen.as_dict(prefix="lib/")
        assert len(docs) == 4
        assert all(k.startswith("lib/") for k in docs)

    def test_total_bytes(self):
        gen = CorpusGenerator(CorpusConfig(n_files=5))
        assert gen.total_bytes() == sum(len(t) for _r, t in gen.documents())
