"""The two tenant workload archetypes: code-repo churn, library ingest."""

import random

from repro.core.hacfs import HacFileSystem
from repro.workloads.coderepo import CodeRepoGenerator
from repro.workloads.digilib import DigitalLibraryGenerator, ZipfSampler


def fresh_tenant(name="dev"):
    hac = HacFileSystem()
    hac.maintenance.set_mode("batched")
    return hac, hac.tenants.create(name)


class TestCodeRepo:
    def test_populate_is_deterministic(self):
        trees = []
        for _ in range(2):
            _hac, t = fresh_tenant()
            gen = CodeRepoGenerator(seed=23)
            paths = gen.populate(t, count=20)
            trees.append([(p, t.read_file(p)) for p in paths])
        assert trees[0] == trees[1]

    def test_churn_is_deterministic_and_mutates_the_tree(self):
        logs = []
        for _ in range(2):
            _hac, t = fresh_tenant()
            gen = CodeRepoGenerator(seed=23)
            paths = gen.populate(t, count=20)
            log = gen.churn(t, paths, steps=30)
            logs.append((log, sorted(paths)))
            for path in paths:
                assert t.isfile(path), path
        assert logs[0] == logs[1]
        kinds = {entry[0] for entry in logs[0][0]}
        assert kinds == {"edit", "rename", "delete"}

    def test_churn_is_index_visible_through_the_facade(self):
        _hac, t = fresh_tenant()
        gen = CodeRepoGenerator(seed=23)
        paths = gen.populate(t, count=10)
        gen.churn(t, paths, steps=10)
        t.barrier()
        # every surviving file is findable; hot-set docs carry the marker
        hits = t.glimpse("def")
        assert hits


class TestDigitalLibrary:
    def test_zipf_sampler_is_head_heavy(self):
        sampler = ZipfSampler(8, s=1.2)
        rng = random.Random(7)
        draws = [sampler.draw(rng) for _ in range(2000)]
        counts = [draws.count(r) for r in range(8)]
        assert counts[0] == max(counts)
        assert counts[0] > 3 * counts[-1]
        assert all(0 <= d < 8 for d in draws)

    def test_ingest_and_query_stream_are_deterministic(self):
        outs = []
        for _ in range(2):
            _hac, t = fresh_tenant("lib")
            gen = DigitalLibraryGenerator(seed=37)
            paths = gen.ingest(t, count=24, batch=8)
            stream = gen.query_stream(30)
            outs.append((
                [(p, t.read_file(p)) for p in paths], stream))
        assert outs[0] == outs[1]

    def test_queries_answer_from_the_ingested_stacks(self):
        _hac, t = fresh_tenant("lib")
        gen = DigitalLibraryGenerator(seed=37)
        gen.ingest(t, count=16, batch=8)
        assert gen.run_queries(t, count=20) > 0
        # head subject dominates the stream
        stream = gen.query_stream(200)
        head = max(set(stream), key=stream.count)
        assert stream.count(head) > len(stream) // 4
