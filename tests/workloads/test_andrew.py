"""The Andrew benchmark implementation, over several FS layers."""

import pytest

from repro.baselines.jadefs import JadeFileSystem
from repro.baselines.pseudofs import PseudoFileSystem
from repro.core.hacfs import HacFileSystem
from repro.vfs.filesystem import FileSystem
from repro.workloads.andrew import (
    PHASES,
    AndrewBenchmark,
    AndrewConfig,
    RawFsAdapter,
    generate_source_tree,
)

SMALL = AndrewConfig(dirs=2, files_per_dir=2, functions_per_file=3)


class TestSourceTree:
    def test_deterministic(self):
        assert generate_source_tree(SMALL) == generate_source_tree(SMALL)

    def test_shape(self):
        tree = generate_source_tree(SMALL)
        assert len(tree) == 4
        assert all(rel.endswith(".c") for rel in tree)
        assert all("int fn_" in text for text in tree.values())


class TestPhases:
    def test_full_run_on_raw_fs(self):
        bench = AndrewBenchmark(RawFsAdapter(FileSystem()), SMALL)
        timings = bench.run()
        assert set(timings) == set(PHASES) | {"total"}
        assert timings["total"] > 0

    def test_phases_produce_expected_artifacts(self):
        target = RawFsAdapter(FileSystem())
        bench = AndrewBenchmark(target, SMALL)
        bench.install_sources()
        bench.phase_makedir()
        bench.phase_copy()
        assert target.fs.read_file("/andrew/dst/module00/src00.c") == \
            target.fs.read_file("/andrew/src/module00/src00.c")
        count = bench.phase_scan()
        assert count == 2 + 4  # module dirs + copied files
        total = bench.phase_read()
        assert total == sum(len(t) for t in bench.source.values())
        binary = bench.phase_make()
        assert target.fs.read_file(binary).startswith(b"BIN ")
        assert target.fs.exists("/andrew/dst/module01/src01.c.o")

    def test_runs_on_hacfs(self):
        bench = AndrewBenchmark(HacFileSystem(), SMALL)
        timings = bench.run()
        assert timings["total"] > 0

    def test_runs_on_jade(self):
        jade = JadeFileSystem(FileSystem())
        timings = AndrewBenchmark(jade, SMALL).run()
        assert timings["total"] > 0

    def test_runs_on_pseudo(self):
        pseudo = PseudoFileSystem(FileSystem())
        timings = AndrewBenchmark(pseudo, SMALL).run()
        assert timings["total"] > 0

    def test_make_is_deterministic_in_output(self):
        t1 = RawFsAdapter(FileSystem())
        b1 = AndrewBenchmark(t1, SMALL)
        b1.run()
        t2 = RawFsAdapter(FileSystem())
        b2 = AndrewBenchmark(t2, SMALL)
        b2.run()
        assert t1.fs.read_file("/andrew/dst/a.out") == \
            t2.fs.read_file("/andrew/dst/a.out")
