"""The exception hierarchy: codes, messages, and inheritance."""

import pytest

from repro import errors


class TestVfsErrors:
    def test_codes(self):
        assert errors.FileNotFound("/x").code == "ENOENT"
        assert errors.FileExists("/x").code == "EEXIST"
        assert errors.NotADirectory("/x").code == "ENOTDIR"
        assert errors.IsADirectory("/x").code == "EISDIR"
        assert errors.DirectoryNotEmpty("/x").code == "ENOTEMPTY"
        assert errors.SymlinkLoop("/x").code == "ELOOP"
        assert errors.CrossDevice("/x").code == "EXDEV"
        assert errors.DeviceBusy("/x").code == "EBUSY"
        assert errors.NoSpace("/x").code == "ENOSPC"

    def test_message_rendering(self):
        err = errors.FileNotFound("/a/b", "directory unknown")
        assert "ENOENT" in str(err)
        assert "/a/b" in str(err)
        assert "directory unknown" in str(err)
        assert err.path == "/a/b"

    def test_pathless_error(self):
        assert str(errors.InvalidArgument()) == "EINVAL"

    def test_all_vfs_errors_are_reproerrors(self):
        for cls in (errors.FileNotFound, errors.BadFileDescriptor,
                    errors.PermissionError_):
            assert issubclass(cls, errors.VfsError)
            assert issubclass(cls, errors.ReproError)


class TestHacErrors:
    def test_query_syntax_error_carries_position(self):
        err = errors.QuerySyntaxError("a & b", 2, "unexpected '&'")
        assert err.position == 2 and err.query == "a & b"
        assert "at 2" in str(err)

    def test_dependency_cycle_renders_path(self):
        err = errors.DependencyCycle("/x", [1, 2, 1])
        assert err.cycle == [1, 2, 1]
        assert "1 -> 2 -> 1" in str(err)

    def test_mount_errors(self):
        err = errors.QueryLanguageMismatch("/m", "glimpse", "sql")
        assert isinstance(err, errors.MountError)
        assert "glimpse" in str(err) and "sql" in str(err)

    def test_remote_unavailable(self):
        err = errors.RemoteUnavailable("digilib", "timeout")
        assert err.namespace == "digilib"
        assert "timeout" in str(err)

    def test_not_a_semantic_directory(self):
        err = errors.NotASemanticDirectory("/plain")
        assert err.path == "/plain"

    def test_unknown_directory_reference(self):
        assert "/nope" in str(errors.UnknownDirectoryReference("/nope"))

    def test_stale_handle(self):
        assert "ino9" in str(errors.StaleHandle("fs:ino9"))

    def test_hac_errors_are_reproerrors(self):
        for cls in (errors.QuerySyntaxError, errors.DependencyCycle,
                    errors.RemoteUnavailable):
            assert issubclass(cls, errors.HacError)
            assert issubclass(cls, errors.ReproError)
            assert not issubclass(cls, errors.VfsError)


class TestBackendUnavailable:
    """The unified failure taxonomy: every transport/RPC/breaker failure
    is a ``BackendUnavailable``, so degradation handlers need exactly one
    except clause regardless of which back-end went dark."""

    def test_hierarchy(self):
        for cls in (errors.RemoteUnavailable, errors.ShardUnavailable,
                    errors.CircuitOpen):
            assert issubclass(cls, errors.BackendUnavailable)
            assert issubclass(cls, errors.HacError)

    def test_base_message_names_the_backend(self):
        err = errors.BackendUnavailable("svc", "timed out")
        assert err.backend == "svc"
        assert "back-end unavailable: svc" in str(err)
        assert "timed out" in str(err)

    def test_remote_keeps_its_namespace_field(self):
        err = errors.RemoteUnavailable("digilib", "timeout")
        assert err.backend == "digilib"
        assert err.namespace == "digilib"
        assert "remote name space unavailable: digilib" in str(err)

    def test_shard_unavailable_names_the_shard(self):
        err = errors.ShardUnavailable("shard2", "partitioned")
        assert err.backend == "shard2"
        assert err.shard == "shard2"
        assert "search shard unavailable: shard2" in str(err)

    def test_circuit_open_carries_retry_time(self):
        err = errors.CircuitOpen("digilib", retry_at=42.0)
        assert err.backend == "digilib"
        assert err.namespace == "digilib"   # compat for old handlers
        assert err.retry_at == 42.0
        assert "circuit open until t=42" in str(err)

    def test_one_except_clause_catches_them_all(self):
        for exc in (errors.RemoteUnavailable("a"),
                    errors.ShardUnavailable("b"),
                    errors.CircuitOpen("c", retry_at=1.0)):
            with pytest.raises(errors.BackendUnavailable):
                raise exc
