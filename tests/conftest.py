"""Shared fixtures for the HAC reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.hacfs import HacFileSystem
from repro.remote.rpc import RpcTransport
from repro.remote.searchsvc import SimulatedSearchService
from repro.vfs.filesystem import FileSystem


@pytest.fixture
def fs():
    """A fresh plain file system."""
    return FileSystem()


@pytest.fixture
def hacfs():
    """A fresh empty HAC file system."""
    return HacFileSystem()


@pytest.fixture
def populated(hacfs):
    """A small populated HAC name space, already indexed.

    Layout::

        /notes/fp-design.txt      fingerprint content
        /notes/recipe.txt         cooking content
        /mail/msg1.txt            fingerprint mail from alice
        /mail/msg2.txt            lunch mail
        /src/match.c              fingerprint source code
    """
    hacfs.makedirs("/notes")
    hacfs.makedirs("/mail")
    hacfs.makedirs("/src")
    hacfs.write_file("/notes/fp-design.txt",
                     b"design notes for the fingerprint matcher\n"
                     b"minutiae extraction and ridge counting\n")
    hacfs.write_file("/notes/recipe.txt",
                     b"banana bread recipe with walnuts\n")
    hacfs.write_file("/mail/msg1.txt",
                     b"From: alice\nSubject: fingerprint sensor\n\n"
                     b"the fingerprint sensor prototype works\n")
    hacfs.write_file("/mail/msg2.txt",
                     b"From: bob\nSubject: lunch\n\nlunch at noon?\n")
    hacfs.write_file("/src/match.c",
                     b"/* fingerprint minutiae matcher */\n"
                     b"int match(int a) { return a; }\n")
    hacfs.clock.tick()
    hacfs.ssync("/")
    return hacfs


@pytest.fixture
def library(hacfs):
    """A simulated remote digital library sharing the hacfs clock."""
    return SimulatedSearchService(
        "digilib",
        documents={
            "fp-survey": "survey of fingerprint recognition methods",
            "fp-sensors": "capacitive fingerprint sensors in practice",
            "nn-paper": "convolutional networks for images",
        },
        titles={"fp-survey": "Survey", "fp-sensors": "Sensors",
                "nn-paper": "ConvNets"},
        transport=RpcTransport("digilib", clock=hacfs.clock),
    )
