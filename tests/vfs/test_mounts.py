"""Unit tests for syntactic mount points."""

import pytest

from repro.errors import DeviceBusy, FileNotFound, InvalidArgument, NotADirectory
from repro.vfs.filesystem import FileSystem


@pytest.fixture
def host():
    fs = FileSystem(name="host")
    fs.makedirs("/mnt/a")
    fs.write_file("/local.txt", b"local")
    return fs


@pytest.fixture
def guest():
    fs = FileSystem(name="guest")
    fs.makedirs("/sub")
    fs.write_file("/sub/remote.txt", b"remote")
    fs.write_file("/top.txt", b"top")
    return fs


class TestMountBasics:
    def test_mount_shadows_covered_dir(self, host, guest):
        host.write_file("/mnt/a/covered.txt", b"hidden")
        host.mount("/mnt/a", guest)
        assert sorted(host.listdir("/mnt/a")) == ["sub", "top.txt"]
        assert host.read_file("/mnt/a/top.txt") == b"top"
        assert host.read_file("/mnt/a/sub/remote.txt") == b"remote"

    def test_unmount_restores_covered_dir(self, host, guest):
        host.write_file("/mnt/a/covered.txt", b"hidden")
        host.mount("/mnt/a", guest)
        returned = host.unmount("/mnt/a")
        assert returned is guest
        assert host.listdir("/mnt/a") == ["covered.txt"]

    def test_mount_on_file_fails(self, host, guest):
        with pytest.raises(NotADirectory):
            host.mount("/local.txt", guest)

    def test_double_mount_fails(self, host, guest):
        host.mount("/mnt/a", guest)
        with pytest.raises(DeviceBusy):
            host.mount("/mnt/a", FileSystem())

    def test_mount_self_fails(self, host):
        with pytest.raises(InvalidArgument):
            host.mount("/mnt", host)

    def test_unmount_non_mount_fails(self, host):
        with pytest.raises(InvalidArgument):
            host.unmount("/mnt/a")
        with pytest.raises(InvalidArgument):
            host.unmount("/")

    def test_mounts_listing(self, host, guest):
        host.mount("/mnt/a", guest)
        assert host.mounts() == [("/mnt/a", guest)]


class TestCrossMountSemantics:
    def test_dotdot_crosses_back(self, host, guest):
        host.mount("/mnt/a", guest)
        res = host.resolve("/mnt/a/sub/../..")
        assert res.node is host.resolve("/mnt").node
        res = host.resolve("/mnt/a/sub/../../..")
        assert res.node is host.root

    def test_writes_go_to_guest_device(self, host, guest):
        host.mount("/mnt/a", guest)
        before = guest.counters.get("blockdev.write_ops")
        host.write_file("/mnt/a/new.txt", b"hello!")
        assert guest.counters.get("blockdev.write_ops") > before
        # the guest sees the file at its own path
        assert guest.read_file("/new.txt") == b"hello!"

    def test_rename_across_mount_fails(self, host, guest):
        host.mount("/mnt/a", guest)
        with pytest.raises(Exception) as exc:
            host.rename("/local.txt", "/mnt/a/moved.txt")
        assert "EXDEV" in str(exc.value)

    def test_rename_within_guest_ok(self, host, guest):
        host.mount("/mnt/a", guest)
        host.rename("/mnt/a/top.txt", "/mnt/a/sub/top.txt")
        assert guest.read_file("/sub/top.txt") == b"top"

    def test_rmdir_mount_point_fails(self, host, guest):
        host.mount("/mnt/a", guest)
        with pytest.raises(DeviceBusy):
            host.rmdir("/mnt/a")

    def test_rename_subtree_containing_mount_fails(self, host, guest):
        host.mount("/mnt/a", guest)
        with pytest.raises(DeviceBusy):
            host.rename("/mnt", "/mnt2")

    def test_nested_mounts(self, host, guest):
        inner = FileSystem(name="inner")
        inner.write_file("/deep.txt", b"deep")
        guest.mkdir("/sub/inner")
        host.mount("/mnt/a", guest)
        host.mount("/mnt/a/sub/inner", inner)
        assert host.read_file("/mnt/a/sub/inner/deep.txt") == b"deep"

    def test_stat_of_mount_point_shows_guest_root(self, host, guest):
        host.mount("/mnt/a", guest)
        st = host.stat("/mnt/a")
        assert st.fsid == guest.fsid

    def test_absolute_symlink_resolves_in_host(self, host, guest):
        guest.symlink("/local.txt", "/backlink")
        host.mount("/mnt/a", guest)
        assert host.read_file("/mnt/a/backlink") == b"local"
