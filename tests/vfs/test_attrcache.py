"""Unit tests for the shared attribute cache and the block device."""

import pytest

from repro.errors import NoSpace
from repro.util.stats import Counters
from repro.vfs.attrcache import AttributeCache
from repro.vfs.blockdev import BlockDevice
from repro.vfs.inode import Attributes


class TestAttributeCache:
    def test_put_get_copies(self):
        cache = AttributeCache(capacity=4)
        attrs = Attributes(mode=0o644, size=10)
        cache.put("/f", attrs)
        got = cache.get("/f")
        assert got.size == 10
        got.size = 99          # mutating the copy must not affect the cache
        assert cache.get("/f").size == 10
        attrs.size = 123       # nor does mutating the original
        assert cache.get("/f").size == 10

    def test_miss_returns_none(self):
        assert AttributeCache().get("/nope") is None

    def test_invalidate(self):
        cache = AttributeCache()
        cache.put("/f", Attributes(mode=0o644))
        cache.invalidate("/f")
        assert cache.get("/f") is None

    def test_eviction_beyond_capacity(self):
        cache = AttributeCache(capacity=2)
        for i in range(3):
            cache.put(f"/f{i}", Attributes(mode=0o644))
        assert len(cache) == 2
        assert cache.get("/f0") is None

    def test_stats_counters(self):
        counters = Counters()
        cache = AttributeCache(counters=counters)
        cache.put("/f", Attributes(mode=0o644))
        cache.get("/f")
        cache.get("/g")
        assert counters.get("attrcache.hit") == 1
        assert counters.get("attrcache.miss") == 1

    def test_footprint(self):
        cache = AttributeCache()
        assert cache.approximate_bytes() == 0
        cache.put("/f", Attributes(mode=0o644))
        assert cache.approximate_bytes() > 0

    def test_clear(self):
        cache = AttributeCache()
        cache.put("/f", Attributes(mode=0o644))
        cache.put("/g", Attributes(mode=0o644))
        cache.clear()
        assert len(cache) == 0
        assert cache.get("/f") is None

    def test_hit_rate(self):
        cache = AttributeCache()
        cache.put("/f", Attributes(mode=0o644))
        cache.get("/f")
        cache.get("/f")
        cache.get("/miss")
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_invalidate_missing_key_is_harmless(self):
        cache = AttributeCache()
        cache.invalidate("/never")  # must not raise
        assert len(cache) == 0

    def test_invalidate_counter(self):
        counters = Counters()
        cache = AttributeCache(counters=counters)
        cache.put("/f", Attributes(mode=0o644))
        cache.invalidate("/f")
        assert counters.get("attrcache.invalidate") == 1
        assert counters.get("attrcache.put") == 1


class TestBlockDevice:
    def test_block_size_positive(self):
        with pytest.raises(ValueError):
            BlockDevice(block_size=0)

    def test_data_allocation_accounting(self):
        dev = BlockDevice(block_size=100)
        dev.allocate(0, 250)
        assert dev.used_blocks == 3
        dev.allocate(250, 50)
        assert dev.used_blocks == 1

    def test_capacity_enforced(self):
        dev = BlockDevice(block_size=100, capacity_blocks=2)
        dev.allocate(0, 200)
        with pytest.raises(NoSpace):
            dev.allocate(0, 1)

    def test_records(self):
        dev = BlockDevice()
        dev.write_record("k", b"abc")
        assert dev.read_record("k") == b"abc"
        assert dev.record_bytes == 3
        dev.write_record("k", b"ab")
        assert dev.record_bytes == 2
        assert dev.delete_record("k") is True
        assert dev.delete_record("k") is False
        assert dev.read_record("k") is None
        assert dev.record_bytes == 0

    def test_record_capacity(self):
        dev = BlockDevice(block_size=10, capacity_blocks=1)
        dev.write_record("a", b"x" * 10)
        with pytest.raises(NoSpace):
            dev.write_record("b", b"y" * 10)

    def test_io_counters(self):
        counters = Counters()
        dev = BlockDevice(block_size=100, counters=counters)
        dev.charge_read(250)
        dev.charge_write(1)
        assert counters.get("blockdev.read_blocks") == 3
        assert counters.get("blockdev.write_blocks") == 1
        assert counters.get("blockdev.read_ops") == 1
