"""Unit tests for the path map: the tree folded into a hash table."""

import pytest

from repro.util.stats import Counters
from repro.vfs.filesystem import FileSystem
from repro.vfs.pathmap import STALE, PathMap


class Node:
    def __init__(self, name):
        self.name = name


class TestPathMapUnit:
    def test_miss_insert_hit(self):
        counters = Counters()
        pm = PathMap(counters=counters)
        node = Node("a")
        assert pm.lookup("/a") is None
        pm.insert("/a", node)
        assert pm.lookup("/a") is node
        assert counters.get("pathmap.miss") == 1
        assert counters.get("pathmap.insert") == 1
        assert counters.get("pathmap.hit") == 1
        assert len(pm) == 1

    def test_invalidate_tombstones_and_lookup_evicts(self):
        counters = Counters()
        pm = PathMap(counters=counters)
        pm.insert("/a", Node("a"))
        assert pm.invalidate("/a") == 1
        # detected, not trusted: the entry is a tombstone until a lookup
        assert pm.entry_generation("/a") == STALE
        assert pm.lookup("/a") is None
        assert counters.get("pathmap.stale") == 1
        assert pm.entry_generation("/a") is None  # evicted
        # invalidating an absent or already-dead entry touches nothing
        assert pm.invalidate("/a") == 0

    def test_invalidate_prefix_kills_subtree_only(self):
        pm = PathMap()
        for path in ("/a", "/a/b", "/a/b/c", "/ab", "/z"):
            pm.insert(path, Node(path))
        assert pm.invalidate_prefix("/a") == 3
        assert pm.lookup("/ab") is not None  # sibling, not a descendant
        assert pm.lookup("/z") is not None
        assert pm.lookup("/a/b/c") is None

    def test_rebase_prefix_moves_entries_in_one_pass(self):
        counters = Counters()
        pm = PathMap(counters=counters)
        nodes = {p: Node(p) for p in ("/a", "/a/b", "/a/b/c", "/ax")}
        for path, node in nodes.items():
            pm.insert(path, node)
        gen_before = pm.generation
        assert pm.rebase_prefix("/a", "/n") == 3
        # same nodes, new keys, fresh generation — servable immediately
        assert pm.lookup("/n") is nodes["/a"]
        assert pm.lookup("/n/b/c") is nodes["/a/b/c"]
        assert pm.lookup("/a/b") is None
        assert pm.lookup("/ax") is nodes["/ax"]
        assert pm.entry_generation("/n/b") > gen_before
        assert counters.get("pathmap.rebased") == 3

    def test_rebase_skips_tombstones(self):
        pm = PathMap()
        pm.insert("/a/b", Node("b"))
        pm.invalidate("/a/b")
        assert pm.rebase_prefix("/a", "/n") == 0
        assert pm.lookup("/n/b") is None

    def test_liveness_backstop(self):
        live = {"ok": True}
        pm = PathMap(is_live=lambda node: live[node.name])
        pm.insert("/a", Node("ok"))
        assert pm.lookup("/a") is not None
        live["ok"] = False
        # no invalidation ever named /a, but the node died: not served
        assert pm.lookup("/a") is None

    def test_clear_and_live_keys(self):
        pm = PathMap()
        pm.insert("/a", Node("a"))
        pm.insert("/b", Node("b"))
        pm.invalidate("/b")
        assert pm.live_keys() == ["/a"]
        assert pm.clear() == 2  # tombstones drop too
        assert len(pm) == 0
        assert "generation" in repr(pm)

    def test_generation_counts_events_not_entries(self):
        pm = PathMap()
        for path in ("/a", "/a/b", "/a/c"):
            pm.insert(path, Node(path))
        before = pm.generation
        pm.invalidate_prefix("/a")  # one event, three entries
        assert pm.generation == before + 1


class TestFileSystemIntegration:
    def test_second_stat_is_served_without_walking(self):
        fs = FileSystem()
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        fs.write_file("/a/b/f.txt", b"x")
        fs.stat("/a/b/f.txt")  # warm
        hits = fs.counters.get("pathmap.hit")
        steps = fs.counters.get("vfs.walk_steps")
        fs.stat("/a/b/f.txt")
        assert fs.counters.get("pathmap.hit") == hits + 1
        assert fs.counters.get("vfs.walk_steps") == steps  # no walk at all

    def test_unlink_invalidates_exactly(self):
        fs = FileSystem()
        fs.mkdir("/a")
        fs.write_file("/a/f.txt", b"x")
        fs.write_file("/a/g.txt", b"y")
        fs.stat("/a/f.txt")
        fs.stat("/a/g.txt")
        fs.unlink("/a/f.txt")
        pm = fs._pathmap
        assert "/a/f.txt" not in pm.live_keys()
        assert "/a/g.txt" in pm.live_keys()

    def test_dir_rename_rebases_descendants_one_pass(self):
        """Satellite regression: after a directory rename, a stat on a
        *descendant* is answered from the rebased map entry — no walk."""
        fs = FileSystem()
        fs.mkdir("/proj")
        fs.mkdir("/proj/src")
        fs.mkdir("/proj/src/deep")
        fs.write_file("/proj/src/deep/f.txt", b"x")
        # warm every level
        for p in ("/proj", "/proj/src", "/proj/src/deep",
                  "/proj/src/deep/f.txt"):
            fs.stat(p)
        rebased_before = fs.counters.get("pathmap.rebased")
        fs.rename("/proj", "/work")
        assert fs.counters.get("pathmap.rebased") - rebased_before == 4
        steps = fs.counters.get("vfs.walk_steps")
        st = fs.stat("/work/src/deep/f.txt")
        assert st.is_file
        assert fs.counters.get("vfs.walk_steps") == steps, \
            "post-rename descendant stat walked the tree"
        # the old keys are gone, not stale-served
        with pytest.raises(Exception):
            fs.stat("/proj/src/deep/f.txt")

    def test_symlink_resolution_is_never_cached(self):
        fs = FileSystem()
        fs.mkdir("/a")
        fs.write_file("/a/real.txt", b"x")
        fs.symlink("/a/real.txt", "/a/link")
        fs.stat("/a/link")  # follows the link: not literal
        assert "/a/link" not in fs._pathmap.live_keys()

    def test_dotdot_resolution_is_never_cached(self):
        fs = FileSystem()
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        fs.stat("/a/b/../b")
        assert all(".." not in k for k in fs._pathmap.live_keys())

    def test_mount_kills_covered_prefix(self):
        fs = FileSystem()
        fs.mkdir("/mnt")
        fs.mkdir("/mnt/sub")
        fs.stat("/mnt/sub")
        sub = FileSystem(name="sub")
        sub.write_file("/inner.txt", b"z")
        fs.mount("/mnt/sub", sub)
        assert "/mnt/sub" not in fs._pathmap.live_keys()
        # resolving across the mount is correct and uncached
        assert fs.read_file("/mnt/sub/inner.txt") == b"z"
        assert "/mnt/sub/inner.txt" not in fs._pathmap.live_keys()
        fs.unmount("/mnt/sub")
        assert fs.isdir("/mnt/sub")

    def test_path_map_off_never_caches(self):
        fs = FileSystem(path_map=False)
        fs.mkdir("/a")
        fs.stat("/a")
        fs.stat("/a")
        assert fs._pathmap is None
        assert fs.counters.get("pathmap.hit") == 0
