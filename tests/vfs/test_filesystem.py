"""Unit tests for the POSIX-like VFS: resolution, operations, errors."""

import pytest

from repro.errors import (
    CrossDevice,
    DeviceBusy,
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    SymlinkLoop,
)
from repro.vfs.filesystem import FileSystem
from repro.vfs.inode import path_of


class TestDirectories:
    def test_mkdir_and_listdir(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        assert fs.listdir("/") == ["a"]
        assert fs.listdir("/a") == ["b"]

    def test_mkdir_existing_fails(self, fs):
        fs.mkdir("/a")
        with pytest.raises(FileExists):
            fs.mkdir("/a")

    def test_mkdir_missing_parent_fails(self, fs):
        with pytest.raises(FileNotFound):
            fs.mkdir("/no/such")

    def test_makedirs(self, fs):
        fs.makedirs("/x/y/z")
        fs.makedirs("/x/y/z")  # idempotent
        assert fs.isdir("/x/y/z")

    def test_makedirs_through_file_fails(self, fs):
        fs.write_file("/f", b"x")
        with pytest.raises(NotADirectory):
            fs.makedirs("/f/sub")

    def test_rmdir(self, fs):
        fs.mkdir("/a")
        fs.rmdir("/a")
        assert not fs.exists("/a")

    def test_rmdir_nonempty_fails(self, fs):
        fs.makedirs("/a/b")
        with pytest.raises(DirectoryNotEmpty):
            fs.rmdir("/a")

    def test_rmdir_file_fails(self, fs):
        fs.write_file("/f", b"")
        with pytest.raises(NotADirectory):
            fs.rmdir("/f")

    def test_listdir_of_file_fails(self, fs):
        fs.write_file("/f", b"")
        with pytest.raises(NotADirectory):
            fs.listdir("/f")

    def test_nlink_counts_subdirs(self, fs):
        fs.mkdir("/a")
        assert fs.stat("/a").attrs.nlink == 2
        fs.mkdir("/a/b")
        assert fs.stat("/a").attrs.nlink == 3
        fs.rmdir("/a/b")
        assert fs.stat("/a").attrs.nlink == 2


class TestFiles:
    def test_create_read_write(self, fs):
        fs.create("/f")
        assert fs.read_file("/f") == b""
        fs.write_file("/f", b"hello")
        assert fs.read_file("/f") == b"hello"

    def test_write_file_creates(self, fs):
        fs.write_file("/new", b"data")
        assert fs.read_file("/new") == b"data"

    def test_append(self, fs):
        fs.write_file("/f", b"ab")
        fs.write_file("/f", b"cd", append=True)
        assert fs.read_file("/f") == b"abcd"

    def test_write_str_rejected(self, fs):
        with pytest.raises(InvalidArgument):
            fs.write_file("/f", "not bytes")

    def test_create_exist_ok(self, fs):
        fs.create("/f")
        st = fs.create("/f", exist_ok=True)
        assert st.is_file
        with pytest.raises(FileExists):
            fs.create("/f")

    def test_create_over_dir_fails(self, fs):
        fs.mkdir("/d")
        with pytest.raises(FileExists):
            fs.create("/d")

    def test_read_dir_fails(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.read_file("/d")

    def test_truncate(self, fs):
        fs.write_file("/f", b"abcdef")
        fs.truncate("/f", 3)
        assert fs.read_file("/f") == b"abc"
        fs.truncate("/f", 5)
        assert fs.read_file("/f") == b"abc\x00\x00"

    def test_unlink(self, fs):
        fs.write_file("/f", b"x")
        fs.unlink("/f")
        assert not fs.exists("/f")
        with pytest.raises(FileNotFound):
            fs.unlink("/f")

    def test_unlink_dir_fails(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.unlink("/d")

    def test_mtime_advances_with_clock(self, fs):
        fs.write_file("/f", b"1")
        t1 = fs.stat("/f").mtime
        fs.clock.tick()
        fs.write_file("/f", b"2")
        assert fs.stat("/f").mtime == t1 + 1.0


class TestSymlinks:
    def test_symlink_and_follow(self, fs):
        fs.write_file("/target", b"data")
        fs.symlink("/target", "/link")
        assert fs.read_file("/link") == b"data"
        assert fs.readlink("/link") == "/target"
        assert fs.islink("/link")
        assert fs.isfile("/link")  # follows

    def test_lstat_vs_stat(self, fs):
        fs.write_file("/t", b"12345")
        fs.symlink("/t", "/l")
        assert fs.stat("/l").is_file
        assert fs.lstat("/l").is_symlink
        assert fs.lstat("/l").size == len("/t")

    def test_relative_symlink(self, fs):
        fs.makedirs("/d")
        fs.write_file("/d/t", b"rel")
        fs.symlink("t", "/d/l")
        assert fs.read_file("/d/l") == b"rel"

    def test_dangling_symlink(self, fs):
        fs.symlink("/nowhere", "/l")
        assert fs.exists("/l", follow=False)
        assert not fs.exists("/l", follow=True)
        with pytest.raises(FileNotFound):
            fs.read_file("/l")

    def test_symlink_loop_detected(self, fs):
        fs.symlink("/b", "/a")
        fs.symlink("/a", "/b")
        with pytest.raises(SymlinkLoop):
            fs.read_file("/a")

    def test_symlink_to_dir_traversal(self, fs):
        fs.makedirs("/real/sub")
        fs.write_file("/real/sub/f", b"x")
        fs.symlink("/real", "/alias")
        assert fs.read_file("/alias/sub/f") == b"x"

    def test_readlink_on_file_fails(self, fs):
        fs.write_file("/f", b"")
        with pytest.raises(InvalidArgument):
            fs.readlink("/f")

    def test_unlink_removes_link_not_target(self, fs):
        fs.write_file("/t", b"keep")
        fs.symlink("/t", "/l")
        fs.unlink("/l")
        assert fs.read_file("/t") == b"keep"


class TestRename:
    def test_rename_file(self, fs):
        fs.write_file("/a", b"x")
        fs.rename("/a", "/b")
        assert not fs.exists("/a")
        assert fs.read_file("/b") == b"x"

    def test_rename_preserves_ino(self, fs):
        fs.write_file("/a", b"x")
        ino = fs.stat("/a").ino
        fs.rename("/a", "/b")
        assert fs.stat("/b").ino == ino

    def test_rename_replaces_file(self, fs):
        fs.write_file("/a", b"new")
        fs.write_file("/b", b"old")
        fs.rename("/a", "/b")
        assert fs.read_file("/b") == b"new"

    def test_rename_dir_over_empty_dir(self, fs):
        fs.makedirs("/a/x")
        fs.mkdir("/b")
        fs.rename("/a", "/b")
        assert fs.isdir("/b/x")

    def test_rename_dir_over_nonempty_dir_fails(self, fs):
        fs.mkdir("/a")
        fs.makedirs("/b/keep")
        with pytest.raises(DirectoryNotEmpty):
            fs.rename("/a", "/b")

    def test_rename_file_over_dir_fails(self, fs):
        fs.write_file("/f", b"")
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.rename("/f", "/d")

    def test_rename_dir_over_file_fails(self, fs):
        fs.mkdir("/d")
        fs.write_file("/f", b"")
        with pytest.raises(NotADirectory):
            fs.rename("/d", "/f")

    def test_rename_into_own_subtree_fails(self, fs):
        fs.makedirs("/a/b")
        with pytest.raises(InvalidArgument):
            fs.rename("/a", "/a/b/c")

    def test_rename_root_fails(self, fs):
        with pytest.raises(InvalidArgument):
            fs.rename("/", "/x")

    def test_rename_onto_itself_noop(self, fs):
        fs.write_file("/a", b"x")
        fs.rename("/a", "/a")
        assert fs.read_file("/a") == b"x"

    def test_rename_missing_source_fails(self, fs):
        fs.mkdir("/d")
        with pytest.raises(FileNotFound):
            fs.rename("/nope", "/d/x")


class TestResolution:
    def test_dotdot(self, fs):
        fs.makedirs("/a/b")
        fs.write_file("/a/f", b"x")
        assert fs.read_file("/a/b/../f") == b"x"

    def test_dotdot_at_root_stays(self, fs):
        fs.mkdir("/a")
        assert fs.resolve("/../../a").node is fs.resolve("/a").node

    def test_component_through_file_fails(self, fs):
        fs.write_file("/f", b"")
        with pytest.raises(NotADirectory):
            fs.resolve("/f/deeper")

    def test_detached_node_has_no_path(self, fs):
        fs.write_file("/f", b"")
        node = fs.resolve("/f").node
        fs.unlink("/f")
        with pytest.raises(ValueError):
            path_of(node)

    def test_path_of_ino(self, fs):
        fs.makedirs("/a/b")
        st = fs.stat("/a/b")
        assert fs.path_of_ino(st.ino) == "/a/b"
        assert fs.path_of_ino(999999) is None


class TestAccounting:
    def test_du(self, fs):
        fs.makedirs("/a")
        fs.write_file("/a/f1", b"12345")
        fs.write_file("/f2", b"123")
        assert fs.du("/") == 8
        assert fs.du("/a") == 5

    def test_device_counters_move(self, fs):
        before = fs.counters.get("blockdev.write_ops")
        fs.write_file("/f", b"x" * 10000)
        assert fs.counters.get("blockdev.write_ops") > before

    def test_inode_count(self, fs):
        base = fs.inode_count()
        fs.mkdir("/a")
        fs.write_file("/a/f", b"")
        assert fs.inode_count() == base + 2
        fs.unlink("/a/f")
        assert fs.inode_count() == base + 1
