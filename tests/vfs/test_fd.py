"""Unit tests for descriptor-based I/O and the FD table."""

import pytest

from repro.errors import BadFileDescriptor, FileNotFound, InvalidArgument, IsADirectory
from repro.vfs.fd import FDTable


@pytest.fixture
def table():
    return FDTable()


class TestOpenModes:
    def test_read_mode_missing_file_fails(self, fs, table):
        with pytest.raises(FileNotFound):
            fs.open(table, "/nope", "r")

    def test_write_mode_creates_and_truncates(self, fs, table):
        fd = fs.open(table, "/f", "w")
        fs.write(table, fd, b"hello")
        fs.close(table, fd)
        fd = fs.open(table, "/f", "w")
        fs.close(table, fd)
        assert fs.read_file("/f") == b""

    def test_append_mode(self, fs, table):
        fs.write_file("/f", b"ab")
        fd = fs.open(table, "/f", "a")
        fs.write(table, fd, b"cd")
        fs.close(table, fd)
        assert fs.read_file("/f") == b"abcd"

    def test_bad_mode(self, fs, table):
        with pytest.raises(InvalidArgument):
            fs.open(table, "/f", "x")

    def test_open_directory_fails(self, fs, table):
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.open(table, "/d", "r")

    def test_read_on_write_only_fd_fails(self, fs, table):
        fd = fs.open(table, "/f", "w")
        with pytest.raises(BadFileDescriptor):
            fs.read(table, fd)

    def test_write_on_read_only_fd_fails(self, fs, table):
        fs.write_file("/f", b"x")
        fd = fs.open(table, "/f", "r")
        with pytest.raises(BadFileDescriptor):
            fs.write(table, fd, b"y")


class TestReadWriteSeek:
    def test_sequential_reads(self, fs, table):
        fs.write_file("/f", b"abcdef")
        fd = fs.open(table, "/f", "r")
        assert fs.read(table, fd, 2) == b"ab"
        assert fs.read(table, fd, 2) == b"cd"
        assert fs.read(table, fd) == b"ef"
        assert fs.read(table, fd) == b""

    def test_lseek_whences(self, fs, table):
        fs.write_file("/f", b"abcdef")
        fd = fs.open(table, "/f", "r")
        assert fs.lseek(table, fd, 2) == 2
        assert fs.read(table, fd, 1) == b"c"
        assert fs.lseek(table, fd, 1, whence=1) == 4
        assert fs.read(table, fd, 1) == b"e"
        assert fs.lseek(table, fd, -1, whence=2) == 5
        assert fs.read(table, fd) == b"f"

    def test_negative_seek_rejected(self, fs, table):
        fs.write_file("/f", b"ab")
        fd = fs.open(table, "/f", "r")
        with pytest.raises(InvalidArgument):
            fs.lseek(table, fd, -1)
        with pytest.raises(InvalidArgument):
            fs.lseek(table, fd, 0, whence=9)

    def test_overwrite_mid_file(self, fs, table):
        fs.write_file("/f", b"abcdef")
        fd = fs.open(table, "/f", "rw")
        fs.lseek(table, fd, 2)
        fs.write(table, fd, b"XY")
        fs.close(table, fd)
        assert fs.read_file("/f") == b"abXYef"

    def test_write_past_end_zero_fills(self, fs, table):
        fd = fs.open(table, "/f", "w")
        fs.lseek(table, fd, 3)
        fs.write(table, fd, b"Z")
        fs.close(table, fd)
        assert fs.read_file("/f") == b"\x00\x00\x00Z"

    def test_independent_offsets(self, fs, table):
        fs.write_file("/f", b"abcd")
        fd1 = fs.open(table, "/f", "r")
        fd2 = fs.open(table, "/f", "r")
        assert fs.read(table, fd1, 2) == b"ab"
        assert fs.read(table, fd2, 2) == b"ab"

    def test_read_after_unlink_still_works(self, fs, table):
        fs.write_file("/f", b"survive")
        fd = fs.open(table, "/f", "r")
        fs.unlink("/f")
        assert fs.read(table, fd) == b"survive"


class TestTable:
    def test_fds_reused_lowest_first(self, fs, table):
        fs.write_file("/f", b"x")
        fd1 = fs.open(table, "/f", "r")
        fd2 = fs.open(table, "/f", "r")
        fs.close(table, fd1)
        fd3 = fs.open(table, "/f", "r")
        assert fd3 == fd1
        assert fd2 != fd3

    def test_close_twice_fails(self, fs, table):
        fs.write_file("/f", b"x")
        fd = fs.open(table, "/f", "r")
        fs.close(table, fd)
        with pytest.raises(BadFileDescriptor):
            fs.close(table, fd)

    def test_unknown_fd(self, fs, table):
        with pytest.raises(BadFileDescriptor):
            fs.read(table, 77)

    def test_close_all(self, fs, table):
        fs.write_file("/f", b"x")
        fs.open(table, "/f", "r")
        fs.open(table, "/f", "r")
        assert len(table) == 2
        table.close_all()
        assert len(table) == 0

    def test_contains_and_bytes(self, fs, table):
        fs.write_file("/f", b"x")
        fd = fs.open(table, "/f", "r")
        assert fd in table
        assert table.approximate_bytes() > 0
