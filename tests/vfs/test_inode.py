"""Unit tests for inode primitives."""

import pytest

from repro.vfs.inode import (
    Attributes,
    DirNode,
    FileNode,
    InodeType,
    SymlinkNode,
    path_of,
)


class TestAttributes:
    def test_copy_is_deep_enough(self):
        a = Attributes(mode=0o644, size=5)
        b = a.copy()
        b.size = 99
        assert a.size == 5

    def test_as_dict(self):
        d = Attributes(mode=0o644, size=5, mtime=2.0).as_dict()
        assert d["size"] == 5 and d["mtime"] == 2.0 and d["nlink"] == 1

    def test_repr(self):
        assert "0o644" in repr(Attributes(mode=0o644))


class TestNodes:
    def test_type_predicates(self):
        f = FileNode(ino=2, mode=0o644, now=0.0)
        d = DirNode(ino=3, mode=0o755, now=0.0)
        s = SymlinkNode(ino=4, mode=0o777, now=0.0, target="/x")
        assert f.is_file and not f.is_dir and not f.is_symlink
        assert d.is_dir and s.is_symlink
        assert f.type is InodeType.FILE

    def test_file_resize(self):
        f = FileNode(ino=2, mode=0o644, now=0.0)
        f.data.extend(b"abcdef")
        f.resize(3)
        assert bytes(f.data) == b"abc" and f.attrs.size == 3
        f.resize(5)
        assert bytes(f.data) == b"abc\x00\x00"

    def test_symlink_size_is_target_length(self):
        s = SymlinkNode(ino=4, mode=0o777, now=0.0, target="/abc")
        assert s.attrs.size == 4

    def test_dir_attach_detach(self):
        d = DirNode(ino=3, mode=0o755, now=0.0)
        child = FileNode(ino=5, mode=0o644, now=0.0)
        d.attach("f", child)
        assert d.lookup("f") is child
        assert child.parent is d and child.name == "f"
        assert d.attrs.size == 1
        gone = d.detach("f")
        assert gone is child and child.parent is None
        assert d.is_empty()

    def test_dir_nlink_tracks_subdirs(self):
        d = DirNode(ino=3, mode=0o755, now=0.0)
        sub = DirNode(ino=6, mode=0o755, now=0.0)
        assert d.attrs.nlink == 2
        d.attach("s", sub)
        assert d.attrs.nlink == 3
        d.detach("s")
        assert d.attrs.nlink == 2

    def test_names_sorted(self):
        d = DirNode(ino=3, mode=0o755, now=0.0)
        for name in ("z", "a", "m"):
            d.attach(name, FileNode(ino=10 + ord(name), mode=0o644, now=0.0))
        assert list(d.names()) == ["a", "m", "z"]


class TestPathOf:
    def test_path_reconstruction(self):
        root = DirNode(ino=1, mode=0o755, now=0.0)
        root.name = "/"
        a = DirNode(ino=2, mode=0o755, now=0.0)
        f = FileNode(ino=3, mode=0o644, now=0.0)
        root.attach("a", a)
        a.attach("f.txt", f)
        assert path_of(f) == "/a/f.txt"
        assert path_of(root) == "/"

    def test_detached_raises(self):
        lone = FileNode(ino=9, mode=0o644, now=0.0)
        with pytest.raises(ValueError):
            path_of(lone)
