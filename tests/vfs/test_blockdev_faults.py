"""Deterministic fault plane of the simulated block device."""

import pytest

from repro.errors import CorruptRecord, DeviceCrashed, NoSpace
from repro.vfs.blockdev import BlockDevice, FaultPlan


class TestCrashAt:
    def test_crash_at_index_prevents_the_write(self):
        dev = BlockDevice()
        dev.write_record("a", b"one")          # index 0
        dev.set_fault_plan(FaultPlan(crash_at=1))
        with pytest.raises(DeviceCrashed):
            dev.write_record("b", b"two")      # index 1 → crash
        assert dev.read_record("a") == b"one"
        assert dev.read_record("b") is None

    def test_device_freezes_after_crash(self):
        dev = BlockDevice()
        dev.set_fault_plan(FaultPlan(crash_at=0))
        with pytest.raises(DeviceCrashed):
            dev.write_record("a", b"x")
        assert dev.crashed
        with pytest.raises(DeviceCrashed):
            dev.write_record("c", b"y")        # any later write fails too
        with pytest.raises(DeviceCrashed):
            dev.delete_record("a")

    def test_clear_faults_is_the_reboot(self):
        dev = BlockDevice()
        dev.set_fault_plan(FaultPlan(crash_at=0))
        with pytest.raises(DeviceCrashed):
            dev.write_record("a", b"x")
        dev.clear_faults()
        dev.write_record("a", b"x")
        assert dev.read_record("a") == b"x"

    def test_crash_applies_to_deletes_too(self):
        dev = BlockDevice()
        dev.write_record("a", b"one")          # index 0
        dev.set_fault_plan(FaultPlan(crash_at=1))
        with pytest.raises(DeviceCrashed):
            dev.delete_record("a")             # index 1 → crash
        dev.clear_faults()
        assert dev.read_record("a") == b"one"  # delete did not happen

    def test_same_plan_same_crash_point(self):
        def run():
            dev = BlockDevice()
            dev.set_fault_plan(FaultPlan(crash_at=2))
            written = []
            try:
                for i in range(10):
                    dev.write_record(f"k{i}", b"v")
                    written.append(i)
            except DeviceCrashed:
                pass
            return written

        assert run() == run() == [0, 1]


class TestTearAt:
    def test_torn_write_persists_garbage_and_crashes(self):
        dev = BlockDevice()
        dev.set_fault_plan(FaultPlan(tear_at=0))
        with pytest.raises(DeviceCrashed):
            dev.write_record("rec", b"full payload bytes")
        dev.clear_faults()
        with pytest.raises(CorruptRecord):
            dev.read_record("rec")
        assert dev.counters.get("blockdev.checksum_failures") == 1

    def test_verify_record_flags_the_tear_without_raising(self):
        dev = BlockDevice()
        dev.write_record("good", b"ok")
        dev.set_fault_plan(FaultPlan(tear_at=1))
        with pytest.raises(DeviceCrashed):
            dev.write_record("bad", b"some payload")
        dev.clear_faults()
        assert dev.verify_record("good")
        assert not dev.verify_record("bad")
        assert not dev.verify_record("missing")

    def test_corrupt_record_helper(self):
        dev = BlockDevice()
        dev.write_record("rec", b"payload")
        assert dev.corrupt_record("rec")
        with pytest.raises(CorruptRecord):
            dev.read_record("rec")
        assert not dev.corrupt_record("nope")


class TestTransientEnospc:
    def test_enospc_at_fails_once_then_recovers(self):
        dev = BlockDevice()
        dev.set_fault_plan(FaultPlan(enospc_at={0}))
        with pytest.raises(NoSpace):
            dev.write_record("a", b"x")
        assert not dev.crashed
        dev.write_record("a", b"x")            # index 1: fine again
        assert dev.read_record("a") == b"x"

    def test_failed_write_consumes_an_index(self):
        dev = BlockDevice()
        dev.set_fault_plan(FaultPlan(enospc_at={1}))
        dev.write_record("a", b"x")
        with pytest.raises(NoSpace):
            dev.write_record("b", b"y")
        assert dev.record_write_index == 2

    def test_enospc_on_allocation(self):
        dev = BlockDevice(block_size=16)
        dev.set_fault_plan(FaultPlan(enospc_allocs={0}))
        with pytest.raises(NoSpace):
            dev.allocate(0, 64)
        dev.allocate(0, 64)                    # next growth succeeds
        dev.allocate(64, 32)                   # shrink never faults

    def test_shrink_consumes_no_alloc_index(self):
        dev = BlockDevice(block_size=16)
        dev.allocate(0, 64)
        before = dev.alloc_index
        dev.allocate(64, 16)
        assert dev.alloc_index == before


class TestChecksums:
    def test_round_trip_is_clean(self):
        dev = BlockDevice()
        dev.write_record("k", b"hello")
        assert dev.read_record("k") == b"hello"
        dev.write_record("k", b"rewritten")
        assert dev.read_record("k") == b"rewritten"

    def test_delete_forgets_the_checksum(self):
        dev = BlockDevice()
        dev.write_record("k", b"hello")
        dev.delete_record("k")
        assert dev.read_record("k") is None
        dev.write_record("k", b"again")
        assert dev.read_record("k") == b"again"
