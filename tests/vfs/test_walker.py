"""Unit tests for tree traversal helpers."""

import pytest

from repro.vfs.filesystem import FileSystem
from repro.vfs.walker import find, iter_files, iter_symlinks, tree_size, walk


@pytest.fixture
def tree(fs):
    fs.makedirs("/a/b")
    fs.makedirs("/a/c")
    fs.write_file("/a/f1.txt", b"one")
    fs.write_file("/a/b/f2.txt", b"two")
    fs.symlink("/a/f1.txt", "/a/c/link")
    return fs


class TestWalk:
    def test_walk_yields_topdown_sorted(self, tree):
        out = list(walk(tree, "/"))
        assert out[0][0] == "/"
        paths = [d for d, _dn, _fn in out]
        assert paths == ["/", "/a", "/a/b", "/a/c"]

    def test_walk_lists_symlinks_as_files(self, tree):
        by_dir = {d: fn for d, _dn, fn in walk(tree, "/")}
        assert by_dir["/a/c"] == ["link"]

    def test_walk_pruning(self, tree):
        visited = []
        for dirpath, dirnames, _files in walk(tree, "/"):
            visited.append(dirpath)
            if dirpath == "/a":
                dirnames.remove("b")
        assert "/a/b" not in visited
        assert "/a/c" in visited

    def test_walk_non_dir_fails(self, tree):
        with pytest.raises(ValueError):
            list(walk(tree, "/a/f1.txt"))

    def test_walk_does_not_follow_symlink_cycles(self, fs):
        fs.mkdir("/d")
        fs.symlink("/d", "/d/self")
        assert len(list(walk(fs, "/"))) == 2  # "/", "/d" — no hang


class TestIterFiles:
    def test_iter_files(self, tree):
        # top-down: a directory's own files come before its subtrees'
        paths = [p for p, _n in iter_files(tree, "/")]
        assert paths == ["/a/f1.txt", "/a/b/f2.txt"]

    def test_iter_symlinks(self, tree):
        assert [p for p, _n in iter_symlinks(tree)] == ["/a/c/link"]

    def test_iter_files_crosses_mounts(self, tree):
        guest = FileSystem(name="g")
        guest.write_file("/inner.txt", b"g")
        tree.mkdir("/mnt")
        tree.mount("/mnt", guest)
        paths = [p for p, _n in iter_files(tree, "/")]
        assert "/mnt/inner.txt" in paths

    def test_iter_files_can_skip_mounts(self, tree):
        guest = FileSystem(name="g")
        guest.write_file("/inner.txt", b"g")
        tree.mkdir("/mnt")
        tree.mount("/mnt", guest)
        paths = [p for p, _n in iter_files(tree, "/", cross_mounts=False)]
        assert "/mnt/inner.txt" not in paths


class TestFindAndSize:
    def test_find_all(self, tree):
        assert "/a/b/f2.txt" in find(tree)
        assert "/a/b" in find(tree)

    def test_find_predicate(self, tree):
        files = find(tree, predicate=lambda p, n: n.is_file)
        assert files == ["/a/b/f2.txt", "/a/f1.txt"]

    def test_tree_size(self, tree):
        dirs, files, links = tree_size(tree, "/")
        assert (dirs, files, links) == (3, 2, 1)
