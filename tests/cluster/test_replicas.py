"""Unit tests for per-shard read replicas and the consistent-cut view."""

import pytest

from repro.cba.queryparser import parse_query
from repro.cluster import ClusterSnapshotView, ShardedSearchCluster

QUERIES = ["fingerprint", "banana", "fingerprint AND ridge",
           "banana OR ridge", "fingerprint AND NOT banana"]


def _loader(_key):
    return ""


def build_cluster(**kwargs):
    cluster = ShardedSearchCluster(_loader, ["s0", "s1", "s2"],
                                  latency=0.0, **kwargs)
    for i in range(12):
        text = ("fingerprint ridge minutiae" if i % 3 == 0
                else "banana bread recipe")
        cluster.index_document(f"k{i}", path=f"/docs/k{i}.txt",
                               mtime=1.0, text=text)
    return cluster


def answers(backend):
    return {q: backend.search(parse_query(q)).to_bytes() for q in QUERIES}


class TestLockstepPublish:
    def test_shards_publish_in_lockstep(self):
        cluster = build_cluster()
        cluster.snapshot_view()
        cluster.publish()
        cluster.publish()
        info = cluster.snapshot_info()
        assert info["version"] == 2
        assert set(info["shards"].values()) == {2}
        assert all(r["version"] == 2 for r in info["replicas"])

    def test_added_shard_joins_at_the_cluster_version(self):
        cluster = build_cluster()
        cluster.publish()
        cluster.publish()
        cluster.add_shard("s3")
        # the rebalance republishes, so every shard (old and new) agrees
        info = cluster.snapshot_info()
        assert set(info["shards"].values()) == {info["version"]}

    def test_replicas_per_shard_is_honoured(self):
        cluster = build_cluster(replicas_per_shard=2)
        cluster.snapshot_view()
        info = cluster.snapshot_info()
        assert len(info["replicas"]) == 6
        assert {r["id"] for r in info["replicas"]} == {
            f"s{i}:r{j}" for i in range(3) for j in range(2)}


class TestConsistentCut:
    def test_view_matches_live_cluster_at_rest(self):
        cluster = build_cluster()
        view = cluster.snapshot_view()
        assert isinstance(view, ClusterSnapshotView)
        assert view.skew == 0
        assert answers(view) == answers(cluster)
        assert view.all_docs().to_bytes() == cluster.all_docs().to_bytes()
        assert len(view) == len(cluster)

    def test_view_is_isolated_until_publish(self):
        cluster = build_cluster()
        cluster.snapshot_view()
        before = answers(cluster)
        cluster.index_document("fresh", path="/docs/fresh.txt", mtime=2.0,
                               text="fingerprint scoop")
        assert answers(cluster.snapshot_view()) == before
        cluster.publish()
        assert answers(cluster.snapshot_view()) == answers(cluster)

    def test_scoped_view_search_matches_cluster(self):
        cluster = build_cluster()
        view = cluster.snapshot_view()
        scope = cluster.all_docs()
        for doc_id in list(scope)[::2]:
            scope.discard(doc_id)
        for query in QUERIES:
            ast = parse_query(query)
            assert view.search(ast, scope).to_bytes() == \
                cluster.search(ast, scope).to_bytes(), query

    def test_doc_lookups_cross_shards(self):
        cluster = build_cluster()
        view = cluster.snapshot_view()
        doc_id = cluster.doc_id_of("k7")
        assert view.doc_by_id(doc_id).key == "k7"
        assert view.doc_by_key("k7").doc_id == doc_id
        assert view.doc_by_key("nope") is None


class TestStalenessInjection:
    def test_lagged_shard_stretches_the_cut(self):
        cluster = build_cluster()
        cluster.snapshot_view()
        old = answers(cluster)
        cluster.set_replica_lag("s0", 1)
        cluster.index_document("fresh", path="/docs/fresh.txt", mtime=2.0,
                               text="fingerprint scoop")
        cluster.publish()
        view = cluster.snapshot_view()
        # the cut's version is the slowest replica's; skew is visible
        assert view.skew == 1
        assert view.version == cluster.snapshot_info()["version"] - 1
        if cluster.shard_of("fresh") == "s0":
            assert answers(view) == old
        cluster.publish()
        caught_up = cluster.snapshot_view()
        assert caught_up.skew == 0
        assert answers(caught_up) == answers(cluster)

    def test_lag_targets_one_replica(self):
        cluster = build_cluster(replicas_per_shard=2)
        cluster.snapshot_view()
        cluster.set_replica_lag("s1", 3, replica_id="s1:r1")
        info = cluster.snapshot_info()
        lags = {r["id"]: r["lag"] for r in info["replicas"]}
        assert lags["s1:r1"] == 3
        assert lags["s1:r0"] == 0

    def test_lag_unknown_shard_or_replica(self):
        cluster = build_cluster()
        cluster.snapshot_view()
        with pytest.raises(KeyError):
            cluster.set_replica_lag("s9", 1)
        with pytest.raises(KeyError):
            cluster.set_replica_lag("s0", 1, replica_id="s0:r9")
