"""ShardedSearchCluster: engine protocol, scatter-gather, degradation,
rebalancing, and persistence."""

import pytest

from repro.cba.engine import CBAEngine
from repro.cba.queryparser import parse_query
from repro.cba.transducers import default_transducer
from repro.cluster import (ClusterFactory, RebalancePlan, ShardedSearchCluster,
                           ShardMap)
from repro.obs import Observability
from repro.util.bitmap import Bitmap
from repro.util.clock import VirtualClock
from repro.util.stats import Counters

TEXTS = {
    ("fs", 0): "alpha beta gamma",
    ("fs", 1): "beta delta",
    ("fs", 2): "gamma epsilon alpha",
    ("fs", 3): "the quick brown fox",
    ("fs", 4): "alpha the zeta",
    ("fs", 5): "delta gamma beta",
    ("fs", 6): "zeta eta theta",
    ("fs", 7): "epsilon alpha beta",
}


@pytest.fixture
def store():
    return dict(TEXTS)


@pytest.fixture
def cluster(store):
    clu = ShardedSearchCluster(lambda k: store.get(k, ""), ["a", "b", "c"],
                               num_blocks=4)
    for key in sorted(store):
        clu.index_document(key, f"/f{key[1]}.txt", 1.0)
    return clu


@pytest.fixture
def mono(store):
    engine = CBAEngine(loader=lambda k: store.get(k, ""), num_blocks=4)
    for key in sorted(store):
        engine.index_document(key, f"/f{key[1]}.txt", 1.0)
    return engine


class TestRegistry:
    def test_global_ids_match_monolith(self, cluster, mono):
        for key in sorted(TEXTS):
            assert cluster.doc_id_of(key) == mono.doc_id_of(key)

    def test_members_partition_all_docs(self, cluster):
        union = Bitmap()
        total = 0
        for sid in cluster.shardmap.shard_ids:
            members = cluster.members(sid)
            assert not members.intersects(union)
            union |= members
            total += len(members)
        assert union == cluster.all_docs()
        assert total == len(cluster)

    def test_shard_registries_mirror_members(self, cluster):
        for sid, shard in cluster.shards.items():
            assert shard.engine.all_docs() == cluster.members(sid)

    def test_doc_lookup_roundtrip(self, cluster):
        doc = cluster.doc_by_key(("fs", 3))
        assert doc is not None
        assert cluster.doc_by_id(doc.doc_id) == doc
        assert ("fs", 3) in cluster
        assert ("fs", 99) not in cluster

    def test_duplicate_index_rejected(self, cluster):
        with pytest.raises(ValueError):
            cluster.index_document(("fs", 0), "/dup", 2.0)

    def test_remove_and_update_unknown_rejected(self, cluster):
        with pytest.raises(KeyError):
            cluster.remove_document(("fs", 99))
        with pytest.raises(KeyError):
            cluster.update_document(("fs", 99), "/x", 1.0)
        with pytest.raises(KeyError):
            cluster.rename_document(("fs", 99), "/x")

    def test_update_remove_rename_route_to_owner(self, cluster, store):
        key = ("fs", 1)
        owner = cluster.shard_of(key)
        store[key] = "omega only"
        cluster.update_document(key, "/f1.txt", 2.0)
        assert cluster.doc_by_key(key).mtime == 2.0
        assert sorted(cluster.search(parse_query("omega"))) == \
            [cluster.doc_id_of(key)]
        cluster.rename_document(key, "/renamed.txt")
        assert cluster.doc_by_key(key).path == "/renamed.txt"
        assert cluster.shards[owner].engine.doc_by_key(key).path == \
            "/renamed.txt"
        doc_id = cluster.remove_document(key)
        assert cluster.doc_by_key(key) is None
        assert doc_id not in cluster.shards[owner].engine.all_docs()

    def test_mtime_snapshot_and_dirty(self, cluster):
        snap = cluster.mtime_snapshot()
        assert snap[("fs", 0)] == 1.0
        assert len(snap) == len(TEXTS)
        assert len(cluster.dirty_docs()) == len(TEXTS)

    def test_reindex_applies_plan(self, cluster, store):
        store[("fs", 8)] = "fresh iota"
        store[("fs", 0)] = "alpha mutated"
        del store[("fs", 6)]
        current = [(key, f"/f{key[1]}.txt", 2.0) for key in sorted(store)]
        plan = cluster.reindex(current)
        assert set(plan.added) == {("fs", 8)}
        assert set(plan.removed) == {("fs", 6)}
        assert set(plan.changed) == set(store) - {("fs", 8)}
        assert sorted(cluster.search(parse_query("iota"))) == \
            [cluster.doc_id_of(("fs", 8))]

    def test_reindex_path_drift_renames(self, cluster, store):
        current = [(key, f"/moved{key[1]}.txt", 1.0) for key in sorted(store)]
        plan = cluster.reindex(current)
        assert plan.is_noop
        assert cluster.doc_by_key(("fs", 0)).path == "/moved0.txt"

    def test_reindex_path_drift_with_transducer_retokenises(self, store):
        clu = ShardedSearchCluster(lambda k: store.get(k, ""), ["a", "b"],
                                   transducer=default_transducer)
        for key in sorted(store):
            clu.index_document(key, f"/f{key[1]}.txt", 1.0)
        before = clu.counters.get("engine.updated")
        clu.reindex([(key, f"/moved{key[1]}.txt", 1.0)
                     for key in sorted(store)])
        assert clu.counters.get("engine.updated") > before

    def test_extract_and_sizes(self, cluster):
        lines = cluster.extract(("fs", 0), parse_query("alpha"))
        assert lines == ["alpha beta gamma"]
        assert cluster.index_size_bytes() > 0
        assert cluster.corpus_bytes() == sum(len(t) for t in TEXTS.values())

    def test_clear_query_cache_fans_out(self, cluster):
        cluster.search(parse_query("alpha"))
        cluster.clear_query_cache()  # must not raise; shards drop memos

    def test_repr(self, cluster):
        assert "docs=8" in repr(cluster)


class TestSearch:
    QUERIES = ["alpha", "alpha AND beta", "alpha OR delta", "NOT alpha",
               '"quick brown"', "alpha AND NOT beta", "the", "*", "quick~1",
               "(alpha OR delta) AND NOT gamma"]

    def test_bit_identical_to_monolith(self, cluster, mono):
        for text in self.QUERIES:
            ast = parse_query(text)
            assert cluster.search(ast).to_bytes() == \
                mono.search(ast).to_bytes(), text

    def test_scoped_search_matches_monolith(self, cluster, mono):
        scope = Bitmap([0, 2, 3, 5, 7])
        for text in self.QUERIES:
            ast = parse_query(text)
            assert cluster.search(ast, scope).to_bytes() == \
                mono.search(ast, scope).to_bytes(), text

    def test_empty_scope_short_circuits_without_rpc(self, cluster):
        calls = [s.transport.calls for s in cluster.shards.values()]
        assert not cluster.search(parse_query("alpha"), Bitmap())
        assert [s.transport.calls for s in cluster.shards.values()] == calls

    def test_scatter_skips_shards_outside_scope(self, cluster):
        sid = cluster.shardmap.shard_ids[0]
        other = [s for s in cluster.shardmap.shard_ids if s != sid]
        scope = Bitmap()
        for o in other:
            scope |= cluster.members(o)
        before = cluster.shards[sid].transport.calls
        cluster.search(parse_query("alpha"), scope)
        # probed (blocks are global) but never scattered to
        assert cluster.shards[sid].transport.calls == before + 1

    def test_matchall_answers_from_registry_without_scatter(self, cluster):
        calls = [s.transport.calls for s in cluster.shards.values()]
        result = cluster.search(parse_query("*"))
        assert result == cluster.all_docs()
        assert [s.transport.calls for s in cluster.shards.values()] == calls

    def test_per_shard_candidate_block_counters(self, cluster):
        cluster.search(parse_query("alpha AND beta"))
        total = sum(cluster.counters.get(
            f"cluster.shard.{sid}.candidate_blocks")
            for sid in cluster.shardmap.shard_ids)
        assert total > 0

    def test_latency_charged_per_shard_call(self, store):
        clock = VirtualClock()
        clu = ShardedSearchCluster(lambda k: store.get(k, ""), ["a", "b"],
                                   clock=clock, latency=0.1)
        for key in sorted(store):
            clu.index_document(key, f"/f{key[1]}", 1.0)
        clu.search(parse_query("alpha"))
        # 2 probes + 2 scatters
        assert clock.now == pytest.approx(0.4)


class TestFieldTerms:
    def test_field_queries_probe_the_right_postings(self, store):
        from repro.cba.transducers import default_transducer
        store[("fs", 10)] = "From: alice\nSubject: budget\n\nnumbers\n"
        store[("fs", 11)] = "From: bob\nSubject: lunch\n\nnoon?\n"
        mono = CBAEngine(loader=lambda k: store.get(k, ""),
                         transducer=default_transducer)
        clu = ShardedSearchCluster(lambda k: store.get(k, ""),
                                   ["a", "b", "c"],
                                   transducer=default_transducer)
        for key in sorted(store):
            mono.index_document(key, f"/f{key[1]}.txt", 1.0)
            clu.index_document(key, f"/f{key[1]}.txt", 1.0)
        for text in ["from:alice", "from:alice AND budget",
                     "from:bob OR alpha"]:
            ast = parse_query(text)
            assert clu.search(ast).to_bytes() == \
                mono.search(ast).to_bytes(), text


class TestShardFacade:
    def test_len_and_repr(self, cluster):
        sid = cluster.shardmap.shard_ids[0]
        shard = cluster.shards[sid]
        assert len(shard) == len(shard.engine)
        assert sid in repr(shard) and "docs=" in repr(shard)

    def test_shard_of_unindexed_key_uses_placement(self, cluster):
        key = ("fs", 777)
        assert cluster.shard_of(key) == cluster.shardmap.owner(key)


class TestDegradation:
    def test_killed_shard_yields_union_of_survivors(self, cluster, mono):
        full = mono.search(parse_query("alpha OR delta"))
        cluster.kill_shard("b")
        got = cluster.search(parse_query("alpha OR delta"))
        assert got == full - cluster.members("b")
        assert cluster.missing_shards == {"b"}

    def test_reset_missing_shards_returns_and_clears(self, cluster):
        cluster.kill_shard("a")
        cluster.search(parse_query("alpha"))
        assert cluster.reset_missing_shards() == {"a"}
        assert cluster.missing_shards == set()

    def test_revive_restores_whole_answers_without_resync(self, cluster,
                                                          mono, store):
        cluster.kill_shard("b")
        cluster.search(parse_query("alpha"))
        # maintenance while partitioned still lands on the shard's index
        store[("fs", 8)] = "alpha resurrect"
        cluster.index_document(("fs", 8), "/f8.txt", 2.0)
        mono.index_document(("fs", 8), "/f8.txt", 2.0)
        cluster.revive_shard("b")
        cluster.reset_missing_shards()
        ast = parse_query("alpha")
        assert cluster.search(ast).to_bytes() == mono.search(ast).to_bytes()
        assert cluster.missing_shards == set()

    def test_health_reports_down_and_breaker_state(self, cluster):
        assert cluster.health() == {"a": "closed", "b": "closed",
                                    "c": "closed"}
        cluster.kill_shard("c")
        assert cluster.health()["c"] == "down"
        cluster.revive_shard("c")
        assert cluster.health()["c"] == "closed"

    def test_breaker_opens_and_still_degrades_cleanly(self, cluster, mono):
        cluster.kill_shard("a")
        ast = parse_query("alpha OR delta")
        expected = mono.search(ast) - cluster.members("a")
        for _ in range(6):  # enough failures to trip the breaker
            assert cluster.search(ast) == expected
        assert cluster.health()["a"] == "down"
        assert cluster.shards["a"].transport.breaker.state == "open"
        # breaker-open rejections count as missing too (CircuitOpen is a
        # RemoteUnavailable), never an exception
        assert cluster.missing_shards == {"a"}

    def test_scatter_phase_failure_degrades_like_probe_failure(self, cluster,
                                                               mono):
        # probe (this shard's call 0) succeeds, scatter (call 1) fails:
        # the shard must still end up in missing with its members dropped
        sid = "b"
        cluster.shards[sid].transport.fail_on = frozenset({1})
        ast = parse_query("alpha OR delta")
        got = cluster.search(ast)
        assert got == mono.search(ast) - cluster.members(sid)
        assert cluster.missing_shards == {sid}

    def test_breakerless_shards_report_unmonitored(self, store):
        clu = ShardedSearchCluster(lambda k: store.get(k, ""), ["a", "b"],
                                   breaker_factory=lambda sid: None)
        assert clu.health() == {"a": "unmonitored", "b": "unmonitored"}

    def test_partial_results_counter(self, cluster):
        cluster.kill_shard("a")
        cluster.search(parse_query("alpha"))
        assert cluster.counters.get("cluster.partial_results") == 1


class TestRebalance:
    def test_add_shard_moves_only_to_new_shard(self, store):
        clu = ShardedSearchCluster(lambda k: store.get(k, ""),
                                   [f"s{i}" for i in range(3)])
        keys = [("fs", i) for i in range(40)]
        for i, key in enumerate(keys):
            store.setdefault(key, f"word{i} alpha")
            clu.index_document(key, f"/f{i}", 1.0)
        before = {key: clu.shard_of(key) for key in keys}
        plan = clu.add_shard("s3")
        assert isinstance(plan, RebalancePlan)
        assert plan.docs_moved == len(plan.moves)
        assert all(m.dest == "s3" for m in plan.moves)
        moved = {m.key for m in plan.moves}
        for key in keys:
            expected = "s3" if key in moved else before[key]
            assert clu.shard_of(key) == expected
        # per-shard plans: sources see removals, the destination additions
        added = [k for p in plan.shard_plans.values() for k in p.added]
        removed = [k for p in plan.shard_plans.values() for k in p.removed]
        assert sorted(added) == sorted(moved)
        assert sorted(removed) == sorted(moved)

    def test_remove_shard_drains_it(self, store):
        clu = ShardedSearchCluster(lambda k: store.get(k, ""),
                                   ["s0", "s1", "s2"])
        keys = [("fs", i) for i in range(40)]
        for i, key in enumerate(keys):
            store.setdefault(key, f"word{i} beta")
            clu.index_document(key, f"/f{i}", 1.0)
        owned = [k for k in keys if clu.shard_of(k) == "s1"]
        plan = clu.remove_shard("s1")
        assert sorted(m.key for m in plan.moves) == sorted(owned)
        assert "s1" not in clu.shards
        assert "s1" not in clu.shardmap
        assert len(clu) == len(keys)

    def test_rebalance_preserves_answers(self, store, mono):
        clu = ShardedSearchCluster(lambda k: store.get(k, ""),
                                   ["s0", "s1", "s2"], num_blocks=4)
        for key in sorted(TEXTS):
            clu.index_document(key, f"/f{key[1]}.txt", 1.0)
        ast = parse_query("alpha OR delta")
        want = mono.search(ast).to_bytes()
        clu.add_shard("s3")
        assert clu.search(ast).to_bytes() == want
        clu.remove_shard("s0")
        assert clu.search(ast).to_bytes() == want
        assert clu.counters.get("cluster.rebalances") == 2

    def test_cannot_remove_last_or_add_duplicate(self, store):
        clu = ShardedSearchCluster(lambda k: store.get(k, ""), ["only"])
        with pytest.raises(ValueError):
            clu.remove_shard("only")
        with pytest.raises(ValueError):
            clu.add_shard("only")


class TestPersistence:
    def test_roundtrip_is_bit_identical(self, cluster, mono, store):
        obj = cluster.to_obj()
        again = ShardedSearchCluster.from_obj(obj,
                                              lambda k: store.get(k, ""))
        for text in TestSearch.QUERIES:
            ast = parse_query(text)
            assert again.search(ast).to_bytes() == \
                mono.search(ast).to_bytes(), text
        assert len(again) == len(cluster)
        assert again.shardmap.shard_ids == cluster.shardmap.shard_ids
        for sid in again.shardmap.shard_ids:
            assert again.members(sid) == cluster.members(sid)

    def test_restored_cluster_accepts_maintenance(self, cluster, store):
        again = ShardedSearchCluster.from_obj(cluster.to_obj(),
                                              lambda k: store.get(k, ""))
        store[("fs", 8)] = "omega arrival"
        doc_id = again.index_document(("fs", 8), "/f8.txt", 2.0)
        assert doc_id == len(TEXTS)  # next id restored
        assert sorted(again.search(parse_query("omega"))) == [doc_id]

    def test_factory_builds_and_restores(self, store):
        factory = ClusterFactory(shards=2, latency=0.0)
        counters = Counters()
        clu = factory(lambda k: store.get(k, ""), counters=counters,
                      num_blocks=4)
        assert clu.shardmap.shard_ids == ("shard0", "shard1")
        for key in sorted(store):
            clu.index_document(key, f"/f{key[1]}", 1.0)
        again = factory.from_obj(clu.to_obj(),
                                 loader=lambda k: store.get(k, ""))
        ast = parse_query("alpha AND beta")
        assert again.search(ast).to_bytes() == clu.search(ast).to_bytes()


class TestObservability:
    def test_tracer_and_metrics_propagate(self, cluster):
        obs = Observability()
        obs.enable()
        cluster.tracer = obs.trace
        cluster.metrics = obs.metrics
        for shard in cluster.shards.values():
            assert shard.engine.tracer is obs.trace
            assert shard.transport.tracer is obs.trace
            assert shard.transport.breaker.tracer is obs.trace
            assert shard.engine.metrics is obs.metrics
        cluster.search(parse_query("alpha AND beta"))
        names = {s.name for s in obs.trace.spans()}
        assert {"cluster.search", "cluster.plan", "cluster.probe",
                "cluster.scatter", "rpc.call"} <= names
        hist = obs.metrics.histogram("cluster.candidate_blocks")
        assert hist is not None and hist.count == 1

    def test_shardmap_reachable_via_cluster(self, cluster):
        assert isinstance(cluster.shardmap, ShardMap)
        assert cluster.shard_of(("fs", 0)) in cluster.shardmap
