"""HAC over a sharded search cluster: engine seam, degradation flags,
persistence, and the shell commands."""

import pytest

from repro.cluster import ClusterFactory, ShardedSearchCluster
from repro.core.hacfs import HacFileSystem
from repro.shell import cli
from repro.shell.session import HacShell


def populate(hacfs):
    hacfs.makedirs("/notes")
    hacfs.makedirs("/mail")
    hacfs.makedirs("/src")
    hacfs.write_file("/notes/fp-design.txt",
                     b"design notes for the fingerprint matcher\n")
    hacfs.write_file("/notes/recipe.txt",
                     b"banana bread recipe with walnuts\n")
    hacfs.write_file("/mail/msg1.txt",
                     b"the fingerprint sensor prototype works\n")
    hacfs.write_file("/src/match.c",
                     b"/* fingerprint minutiae matcher */\n")
    hacfs.clock.tick()
    hacfs.ssync("/")


def key_of(hacfs, path):
    for doc_id in hacfs.engine.all_docs():
        doc = hacfs.engine.doc_by_id(doc_id)
        if doc.path == path:
            return doc.key
    raise AssertionError(f"{path} not indexed")


@pytest.fixture
def cfs():
    """A HAC file system running over a 3-shard cluster."""
    fs = HacFileSystem(engine_factory=ClusterFactory(shards=3))
    populate(fs)
    fs.smkdir("/q", "fingerprint")
    return fs


class TestEngineSeam:
    def test_factory_builds_a_cluster(self, cfs):
        assert isinstance(cfs.engine, ShardedSearchCluster)
        assert len(cfs.engine.shards) == 3

    def test_links_match_monolithic_twin(self, cfs):
        mono = HacFileSystem()
        populate(mono)
        mono.smkdir("/q", "fingerprint")
        assert set(cfs.links("/q")) == set(mono.links("/q"))
        assert set(cfs.links("/q")) == {"fp-design.txt", "msg1.txt",
                                        "match.c"}

    def test_writes_flow_through_the_cluster(self, cfs):
        cfs.write_file("/notes/new.txt", b"another fingerprint note\n")
        cfs.clock.tick()
        cfs.ssync("/")
        assert "new.txt" in cfs.links("/q")
        cfs.unlink("/notes/new.txt")
        cfs.clock.tick()
        cfs.ssync("/")
        assert "new.txt" not in cfs.links("/q")

    def test_adopt_engine_mid_life_preserves_links(self):
        fs = HacFileSystem()
        populate(fs)
        fs.smkdir("/q", "fingerprint")
        before = set(fs.links("/q"))
        cluster = ClusterFactory(shards=2)(
            fs._load_doc, counters=fs.counters, clock=fs.clock,
            transducer=fs.engine.transducer,
            num_blocks=fs.engine.index.num_blocks,
            fast_path=fs.engine.fast_path)
        fs.adopt_engine(cluster)
        assert fs.engine is cluster
        assert len(cluster) > 0
        assert set(fs.links("/q")) == before
        assert fs.fsck() == []

    def test_watched_subtree_stays_fresh(self, cfs):
        cfs.watch("/notes")
        cfs.write_file("/notes/eager.txt", b"eager fingerprint update\n")
        assert "eager.txt" in cfs.links("/q")  # no explicit ssync

    def test_fsck_clean(self, cfs):
        assert cfs.fsck() == []


class TestDegradation:
    def test_killed_shard_keeps_links_and_flags_directory(self, cfs):
        key = key_of(cfs, "/notes/fp-design.txt")
        sid = cfs.engine.shard_of(key)
        before = set(cfs.links("/q"))
        cfs.engine.kill_shard(sid)
        cfs.clock.tick()
        cfs.ssync("/")  # must not raise
        assert set(cfs.links("/q")) == before  # stale beats lost
        flags = cfs.health("/q")["directories"]["/q"]["degraded_shards"]
        assert set(flags) == {sid}
        assert "fp-design.txt" in cfs.health("/q")["directories"]["/q"]["degraded_links"]
        assert cfs.counters.get("consistency.partial_evaluations") >= 1
        assert cfs.counters.get("consistency.shard_degradations") == 1

    def test_revive_clears_flags(self, cfs):
        key = key_of(cfs, "/notes/fp-design.txt")
        sid = cfs.engine.shard_of(key)
        cfs.engine.kill_shard(sid)
        cfs.clock.tick()
        cfs.ssync("/")
        cfs.engine.revive_shard(sid)
        cfs.clock.tick()
        cfs.ssync("/")
        assert cfs.health("/q")["directories"] == {}
        assert cfs.counters.get("consistency.shard_recoveries") == 1
        assert set(cfs.links("/q")) == {"fp-design.txt", "msg1.txt",
                                        "match.c"}

    def test_degradation_timestamp_is_first_failure(self, cfs):
        key = key_of(cfs, "/notes/fp-design.txt")
        sid = cfs.engine.shard_of(key)
        cfs.engine.kill_shard(sid)
        cfs.clock.tick()
        cfs.ssync("/")
        first = cfs.health("/q")["directories"]["/q"]["degraded_shards"][sid]
        cfs.clock.tick()
        cfs.ssync("/")
        assert cfs.health("/q")["directories"]["/q"]["degraded_shards"][sid] == first  # not re-stamped


class TestPersistence:
    def test_restore_autodetects_cluster(self, cfs):
        cfs.save_index()
        again = HacFileSystem.restore(cfs.fs)
        assert isinstance(again.engine, ShardedSearchCluster)
        assert set(again.links("/q")) == {"fp-design.txt", "msg1.txt",
                                          "match.c"}
        assert again.fsck() == []

    def test_restore_with_factory_and_saved_index(self, cfs):
        cfs.save_index()
        again = HacFileSystem.restore(
            cfs.fs, engine_factory=ClusterFactory(shards=3))
        assert isinstance(again.engine, ShardedSearchCluster)
        assert len(again.engine) == len(cfs.engine)
        assert set(again.links("/q")) == set(cfs.links("/q"))

    def test_restore_with_factory_builds_fresh_when_unsaved(self, cfs):
        # no save_index(): the factory must rebuild from the corpus
        again = HacFileSystem.restore(
            cfs.fs, engine_factory=ClusterFactory(shards=2))
        assert isinstance(again.engine, ShardedSearchCluster)
        assert len(again.engine.shards) == 2
        again.ssync("/")
        assert set(again.links("/q")) == {"fp-design.txt", "msg1.txt",
                                          "match.c"}

    def test_restored_cluster_accepts_incremental_sync(self, cfs):
        cfs.save_index()
        again = HacFileSystem.restore(cfs.fs)
        again.write_file("/mail/msg2.txt", b"fingerprint follow-up\n")
        again.clock.tick()
        again.ssync("/")
        assert "msg2.txt" in again.links("/q")


class TestShell:
    @pytest.fixture
    def shell(self):
        sh = HacShell()
        populate(sh.hacfs)
        sh.hacfs.smkdir("/q", "fingerprint")
        return sh

    def test_shards_before_clustering(self, shell):
        assert shell.shards() == []
        assert "not a cluster" in cli.execute(shell, "shards")

    def test_smkcluster_and_shards_commands(self, shell):
        out = cli.execute(shell, "smkcluster 2")
        assert "2 shard(s)" in out
        assert isinstance(shell.hacfs.engine, ShardedSearchCluster)
        rows = shell.shards()
        assert len(rows) == 2
        assert sum(docs for _sid, docs, _h, _c in rows) == \
            len(shell.hacfs.engine)
        listing = cli.execute(shell, "shards")
        assert "shard0" in listing and "closed" in listing

    def test_cluster_backed_glimpse_and_links(self, shell):
        cli.execute(shell, "smkcluster 3")
        hits = shell.glimpse("fingerprint")
        assert "/notes/fp-design.txt" in hits
        assert "fp-design.txt" in {name for name, _cls, _t
                                   in shell.sls("/q")}
        assert cli.execute(shell, "fsck") == "clean"

    def test_smkcluster_default_shard_count(self, shell):
        assert "3 shard(s)" in cli.execute(shell, "smkcluster")
