"""Rendezvous-hashing shard map: determinism, coverage, minimal movement."""

import pytest

from repro.cluster.shardmap import Move, ShardMap, _score

KEYS = [("fs", i) for i in range(200)]


class TestPlacement:
    def test_owner_is_deterministic_across_instances(self):
        a = ShardMap(["s0", "s1", "s2"])
        b = ShardMap(["s0", "s1", "s2"])
        assert [a.owner(k) for k in KEYS] == [b.owner(k) for k in KEYS]

    def test_owner_ignores_declaration_order(self):
        a = ShardMap(["s0", "s1", "s2"])
        b = ShardMap(["s2", "s0", "s1"])
        assert [a.owner(k) for k in KEYS] == [b.owner(k) for k in KEYS]

    def test_every_shard_owns_something(self):
        smap = ShardMap([f"s{i}" for i in range(4)])
        owners = {smap.owner(k) for k in KEYS}
        assert owners == set(smap.shard_ids)

    def test_balance_is_not_degenerate(self):
        smap = ShardMap([f"s{i}" for i in range(4)])
        counts = {sid: 0 for sid in smap.shard_ids}
        for key in KEYS:
            counts[smap.owner(key)] += 1
        # rendezvous over 200 keys: no shard takes more than half
        assert max(counts.values()) <= len(KEYS) // 2

    def test_mixed_key_shapes_are_stable(self):
        smap = ShardMap(["s0", "s1"])
        for key in [("fs", 1), "doc-a", 17]:
            assert smap.owner(key) == smap.owner(key)

    def test_score_distinguishes_shards(self):
        assert _score("s0", ("fs", 1)) != _score("s1", ("fs", 1))


class TestRebalanceMoves:
    def test_adding_a_shard_only_moves_docs_to_it(self):
        old = ShardMap(["s0", "s1", "s2"])
        new = old.with_shard("s3")
        moves = old.moves(new, KEYS)
        assert moves  # 200 keys over 4 shards: someone moves
        assert all(m.dest == "s3" for m in moves)
        assert all(m.source != "s3" for m in moves)

    def test_removing_a_shard_only_moves_its_docs(self):
        old = ShardMap(["s0", "s1", "s2"])
        new = old.without_shard("s1")
        moves = old.moves(new, KEYS)
        owned = [k for k in KEYS if old.owner(k) == "s1"]
        assert [m.key for m in moves] == owned
        assert all(m.source == "s1" and m.dest != "s1" for m in moves)

    def test_moves_preserve_key_order(self):
        old = ShardMap(["s0", "s1"])
        new = old.with_shard("s2")
        moves = old.moves(new, KEYS)
        positions = [KEYS.index(m.key) for m in moves]
        assert positions == sorted(positions)

    def test_unchanged_maps_move_nothing(self):
        smap = ShardMap(["s0", "s1"])
        assert smap.moves(ShardMap(["s0", "s1"]), KEYS) == []

    def test_move_namedtuple_shape(self):
        move = Move(("fs", 1), "s0", "s1")
        assert move.key == ("fs", 1)
        assert move.source == "s0"
        assert move.dest == "s1"


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ShardMap([])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            ShardMap(["s0", "s0"])

    def test_with_existing_shard_rejected(self):
        with pytest.raises(ValueError):
            ShardMap(["s0"]).with_shard("s0")

    def test_without_unknown_shard_rejected(self):
        with pytest.raises(KeyError):
            ShardMap(["s0"]).without_shard("s9")

    def test_cannot_remove_last_shard(self):
        with pytest.raises(ValueError):
            ShardMap(["s0"]).without_shard("s0")

    def test_maps_are_immutable_values(self):
        smap = ShardMap(["s0", "s1"])
        grown = smap.with_shard("s2")
        assert len(smap) == 2 and len(grown) == 3
        assert "s2" not in smap and "s2" in grown

    def test_accepts_generators(self):
        smap = ShardMap(f"s{i}" for i in range(3))
        assert len(smap) == 3

    def test_repr(self):
        assert "s0" in repr(ShardMap(["s0"]))
