"""The interactive REPL's command dispatch."""

import pytest

from repro.shell.cli import build_demo_shell, execute


@pytest.fixture(scope="module")
def shell():
    return build_demo_shell()


class TestDispatch:
    def test_help(self, shell):
        assert "smkdir" in execute(shell, "help")

    def test_empty_line(self, shell):
        assert execute(shell, "") == ""

    def test_unknown_command(self, shell):
        assert "unknown command" in execute(shell, "frobnicate")

    def test_parse_error_reported(self, shell):
        assert "parse error" in execute(shell, 'cat "unterminated')

    def test_ls_and_cat(self, shell):
        assert "notes" in execute(shell, "ls")
        assert "fingerprint" in execute(shell, "cat /notes/fp-design.txt")

    def test_cd_pwd(self, shell):
        assert execute(shell, "cd /notes") == "/notes"
        assert execute(shell, "pwd") == "/notes"
        execute(shell, "cd /")

    def test_semantic_flow(self, shell):
        out = execute(shell, "smkdir /fpdemo fingerprint")
        assert "semantic directory /fpdemo" in out
        assert execute(shell, "squery /fpdemo") == "fingerprint"
        listing = execute(shell, "sls /fpdemo")
        assert "[transient]" in listing
        sact = execute(shell, "sact /fpdemo/fp-design.txt")
        assert "fingerprint" in sact

    def test_write_mv_rm(self, shell):
        execute(shell, "mkdir /scratch")
        execute(shell, "write /scratch/a.txt hello there")
        assert "hello there" in execute(shell, "cat /scratch/a.txt")
        execute(shell, "mv /scratch/a.txt /scratch/b.txt")
        execute(shell, "rm /scratch/b.txt")
        assert execute(shell, "ls /scratch") == ""

    def test_smount_and_glimpse(self, shell):
        out = execute(shell, "smount /library")
        assert "mounted demo library" in out
        execute(shell, "smkdir /glimpsed glimpse")
        # the demo mail corpus has glimpse-topic messages
        assert "/mail/" in execute(shell, "glimpse glimpse")

    def test_ssync(self, shell):
        assert "ReindexPlan" in execute(shell, "ssync /")

    def test_errors_survive(self, shell):
        assert "error:" in execute(shell, "cat /does/not/exist")
        assert "error:" in execute(shell, "rmdir /notes")  # not empty

    def test_watch_commands(self, shell):
        assert "watching /mail" in execute(shell, "swatch /mail")
        execute(shell, "smkdir /fresh fingerprint")
        execute(shell, "write /mail/live.txt breaking fingerprint news")
        assert "live.txt" in execute(shell, "ls /fresh")
        assert execute(shell, "sunwatch /mail") == "unwatched"
        assert execute(shell, "sunwatch /mail") == "was not watched"

    def test_fsck_command(self, shell):
        assert execute(shell, "fsck") == "clean"
        shell.hacfs.meta.create(31337)       # plant an orphan record
        assert "orphan-state" in execute(shell, "fsck")
        assert execute(shell, "fsck --repair") != "clean"  # reports as it fixes
        assert execute(shell, "fsck") == "clean"

    def test_quit(self, shell):
        assert execute(shell, "quit") is None


class TestObservabilityCommands:
    @pytest.fixture()
    def shell(self):
        # fresh world per test: these commands mutate trace state
        return build_demo_shell()

    def test_hacstat_counters_and_prefix_filter(self, shell):
        out = execute(shell, "hacstat")
        assert "counter" in out and "vfs." in out
        filtered = execute(shell, "hacstat engine")
        assert "engine." in filtered and "vfs." not in filtered

    def test_trace_lifecycle(self, shell):
        assert "try 'trace on'" in execute(shell, "trace show")
        assert execute(shell, "trace on") == "tracing on"
        execute(shell, "mkdir /traced")
        shown = execute(shell, "trace show hac.mkdir")
        assert '"name": "hac.mkdir"' in shown
        assert execute(shell, "trace off") == "tracing off"
        assert execute(shell, "trace clear") == "trace buffer cleared"
        assert "try 'trace on'" in execute(shell, "trace show")

    def test_trace_export_writes_jsonl(self, shell):
        execute(shell, "trace on")
        execute(shell, "mkdir /t")
        out = execute(shell, "trace export /trace.jsonl")
        assert "spans" in out
        dump = execute(shell, "cat /trace.jsonl")
        assert '"name": "vfs.namei"' in dump

    def test_trace_usage_errors(self, shell):
        # bare `trace` defaults to show
        assert "try 'trace on'" in execute(shell, "trace")
        assert "unknown trace subcommand" in execute(shell, "trace bogus")
        assert "usage:" in execute(shell, "trace export")


class TestSchedulerCommands:
    @pytest.fixture()
    def shell(self):
        # fresh world per test: these commands mutate scheduler state
        return build_demo_shell()

    def test_status_renders_counters(self, shell):
        out = execute(shell, "sched status")
        assert "mode: eager" in out
        assert "pending: 0" in out
        # counters render as integers, not "0.0"
        assert "events: 0" in out and "0.0" not in out

    def test_mode_switch_and_drain(self, shell):
        assert execute(shell, "sched mode batched") == \
            "scheduler mode: batched"
        execute(shell, "swatch /mail")
        execute(shell, "write /mail/d.txt fingerprint draft one")
        execute(shell, "write /mail/d.txt fingerprint draft two")
        assert "pending: 1" in execute(shell, "sched status")
        assert execute(shell, "sched drain") == "drained (1 index ops)"
        assert "pending: 0" in execute(shell, "sched status")

    def test_usage_errors(self, shell):
        assert "usage: sched mode" in execute(shell, "sched mode")
        assert "unknown sched subcommand" in execute(shell, "sched bogus")

    def test_ssync_async_queues_behind_the_drain(self, shell):
        execute(shell, "sched mode batched")
        assert execute(shell, "ssync --async") == \
            "sync queued behind the next drain"
        assert "pending_syncs: 1" in execute(shell, "sched status")
        assert "index ops" in execute(shell, "sched drain")
        assert "pending_syncs: 0" in execute(shell, "sched status")

    def test_ssync_async_in_eager_mode_runs_synchronously(self, shell):
        assert "ReindexPlan" in execute(shell, "ssync --async /")
