"""Shell surface for the fault plane: shards kill/restore, sched lag,
admit on/off, and the chaos soak commands."""

import pytest

from repro.errors import AdmissionRejected, InvalidArgument
from repro.shell.cli import build_demo_shell, execute
from repro.shell.session import HacShell


@pytest.fixture
def shell():
    return build_demo_shell()


@pytest.fixture
def clustered(shell):
    shell.smkcluster(2)
    return shell


# -- shards kill / restore ---------------------------------------------------


def test_kill_and_restore_round_trip(clustered):
    assert clustered.shards_kill("shard0") == "shard0"
    health = clustered.hacfs.engine.health()
    assert health["shard0"] == "down"
    assert clustered.shards_restore("shard0") == "shard0"
    assert clustered.hacfs.engine.health()["shard0"] != "down"


def test_kill_validates_engine_and_shard(clustered):
    with pytest.raises(InvalidArgument):
        HacShell().shards_kill("shard0")     # monolithic engine
    with pytest.raises(InvalidArgument):
        clustered.shards_kill("shard9")      # no such shard
    with pytest.raises(InvalidArgument):
        clustered.shards_restore("shard9")


def test_kill_restore_via_the_repl(clustered):
    assert execute(clustered, "shards kill shard1") == "killed shard1"
    assert "down" in execute(clustered, "shards")
    assert execute(clustered, "shards restore shard1") == "restored shard1"
    assert execute(clustered, "shards kill") == "usage: shards kill SHARD"


# -- sched lag ---------------------------------------------------------------


def test_lag_whole_shard(clustered):
    assert clustered.sched_lag("shard0", 2) == "shard0"
    engine = clustered.hacfs.engine.shards["shard0"].engine
    assert all(r.lag == 2 for r in engine.replicas)


def test_lag_validates_shard(clustered):
    with pytest.raises(InvalidArgument):
        clustered.sched_lag("shard9", 1)


def test_lag_monolith_replica(shell):
    shell.hacfs.engine.attach_replica("r-test")
    assert shell.sched_lag("r-test", 3) == "r-test"
    info = shell.hacfs.engine.snapshot_info()
    assert {"id": "r-test", "version": info["replicas"][0]["version"],
            "lag": 3} in info["replicas"]


def test_lag_via_the_repl(clustered):
    assert execute(clustered, "sched lag shard0 1") == \
        "lagged shard0 by 1 publish(es)"
    assert execute(clustered, "sched lag") == \
        "usage: sched lag REPLICA PUBLISHES"


# -- admit -------------------------------------------------------------------


def test_admit_toggle_via_session(shell):
    assert shell.admit_status()["enabled"] is False
    assert shell.admit_on()["enabled"] is True
    assert shell.hacfs.admission.enabled is True
    assert shell.admit_off()["enabled"] is False


def test_admit_via_the_repl(shell):
    out = execute(shell, "admit on")
    assert "enabled: True" in out
    assert "state: healthy" in out
    assert "enabled: False" in execute(shell, "admit off")
    assert "unknown admit subcommand" in execute(shell, "admit bogus")


def test_glimpse_downgrades_under_open_breaker(clustered):
    """The read gate in HacShell.glimpse: a strong read under a dead
    shard serves from the snapshot instead of scattering to a partial."""
    clustered.ssync("/")
    clustered.hacfs.maintenance.publish()
    clustered.admit_on()
    clustered.shards_kill("shard0")
    before = clustered.hacfs.counters.get("cluster.partial_results")
    hits = clustered.glimpse("fingerprint", consistency="strong")
    assert hits          # still answering
    status = clustered.admit_status()
    assert status["downgraded_reads"] == 1
    # the downgrade avoided the live scatter: no new partial result
    assert clustered.hacfs.counters.get("cluster.partial_results") == before


def test_shed_write_surfaces_as_an_error(clustered):
    clustered.hacfs.maintenance.set_mode("batched")
    clustered.hacfs.watch("/notes")
    clustered.hacfs.admission.max_queue_depth = 1
    clustered.write("/notes/fill.txt", "fingerprint fill")
    clustered.admit_on()
    clustered.shards_kill("shard0")
    with pytest.raises(AdmissionRejected):
        clustered.write("/notes/shed.txt", "never lands")
    assert "error:" in execute(clustered, "write /notes/shed2.txt nope")


# -- chaos run / status ------------------------------------------------------


def test_chaos_run_uses_a_twin_world(shell):
    before = sorted(shell.hacfs.listdir("/"))
    report = shell.chaos_run(seed=2, k=0, steps=12, windows=1)
    assert report["ok"], report["violations"]
    assert shell.chaos_status() is report
    # this shell's own file system was never touched
    assert sorted(shell.hacfs.listdir("/")) == before


def test_chaos_via_the_repl():
    shell = build_demo_shell()
    assert "no chaos run yet" in execute(shell, "chaos status")
    out = execute(shell, "chaos run 4 0 12")
    assert "ok: True" in out
    assert "seed: 4" in out
    assert '"ok": true' in execute(shell, "chaos status")
    assert "unknown chaos subcommand" in execute(shell, "chaos bogus")


def test_fresh_session_has_no_chaos_report():
    assert HacShell().chaos_status() is None
