"""Shell surface of the serving tier: consistency levels and sched verbs."""

import pytest

from repro.shell.cli import execute
from repro.shell.session import HacShell


@pytest.fixture
def shell():
    shell = HacShell()
    hac = shell.hacfs
    hac.makedirs("/mail")
    hac.write_file("/mail/msg1.txt", b"fingerprint sensor prototype\n")
    hac.write_file("/mail/msg2.txt", b"banana bread for lunch\n")
    hac.clock.tick()
    hac.ssync("/")
    hac.watch("/mail")
    hac.maintenance.set_mode("batched")
    return shell


class TestGlimpseConsistency:
    def test_default_is_strong(self, shell):
        shell.write("/mail/msg3.txt", "late fingerprint news\n")
        shell.hacfs.clock.tick()
        hits = shell.glimpse("fingerprint")
        assert any(p.endswith("msg3.txt") for p in hits)

    def test_snapshot_serves_the_published_past(self, shell):
        assert shell.glimpse("fingerprint", consistency="snapshot") == \
            shell.glimpse("fingerprint", consistency="strong")
        shell.write("/mail/msg3.txt", "late fingerprint news\n")
        shell.hacfs.clock.tick()
        stale = shell.glimpse("fingerprint", consistency="snapshot")
        assert not any(p.endswith("msg3.txt") for p in stale)
        shell.sched_drain()
        fresh = shell.glimpse("fingerprint", consistency="snapshot")
        assert any(p.endswith("msg3.txt") for p in fresh)

    def test_snapshot_respects_scope(self, shell):
        hac = shell.hacfs
        hac.makedirs("/other")
        hac.write_file("/other/note.txt", b"fingerprint elsewhere\n")
        hac.clock.tick()
        hac.ssync("/")
        hits = shell.glimpse("fingerprint", scope_path="/mail",
                             consistency="snapshot")
        assert hits and all(p.startswith("/mail/") for p in hits)

    def test_unknown_level_rejected(self, shell):
        with pytest.raises(ValueError):
            shell.glimpse("fingerprint", consistency="eventual")

    def test_snapshot_read_emits_its_own_span(self, shell):
        shell.hacfs.obs.enable()
        shell.glimpse("fingerprint", consistency="snapshot")
        spans = shell.hacfs.obs.trace.spans(name="hac.glimpse_snapshot")
        assert spans and "version" in spans[-1].attrs


class TestSchedVerbs:
    def test_status_shows_serving_state(self, shell):
        shell.hacfs.engine.snapshot_view()  # attach a replica
        out = execute(shell, "sched status")
        assert "snapshot_version:" in out
        assert "replica_lag:" in out

    def test_publish_forces_a_version(self, shell):
        before = shell.hacfs.engine.snapshot_info()["version"]
        out = execute(shell, "sched publish")
        assert f"published snapshot version {before + 1}" == out

    def test_unknown_subcommand_mentions_publish(self, shell):
        assert "publish" in execute(shell, "sched frobnicate")
