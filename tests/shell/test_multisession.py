"""Several shell sessions ("processes") over one HAC file system.

The paper keeps the attribute cache in shared memory "so that different
processes can access it"; descriptor tables are per-process.  Sessions
model processes here: each has its own cwd; descriptor state lives in the
shared HacFileSystem table (one table per HacFileSystem instance — the
library is linked into each process, the name space is shared).
"""

import pytest

from repro.shell.session import HacShell


@pytest.fixture
def sessions(populated):
    return HacShell(populated), HacShell(populated)


class TestSharedNamespace:
    def test_independent_cwds(self, sessions):
        a, b = sessions
        a.cd("/notes")
        b.cd("/mail")
        assert a.pwd() == "/notes" and b.pwd() == "/mail"
        assert a.cat("recipe.txt").startswith("banana")
        assert "lunch" in b.cat("msg2.txt")

    def test_mutations_visible_across_sessions(self, sessions):
        a, b = sessions
        a.write("/shared.txt", "written by a\n")
        assert b.cat("/shared.txt") == "written by a\n"
        b.rm("/shared.txt")
        assert not a.hacfs.exists("/shared.txt")

    def test_semantic_state_shared(self, sessions):
        a, b = sessions
        a.smkdir("/fp", "fingerprint")
        assert b.squery("/fp") == "fingerprint"
        b.rm("/fp/msg1.txt")                 # b prohibits
        assert "msg1.txt" not in a.ls("/fp")  # a sees it gone
        a.ssync("/")
        assert "msg1.txt" not in b.ls("/fp")  # and it stays gone for both

    def test_attribute_cache_shared(self, sessions):
        a, b = sessions
        a.stat("/notes/recipe.txt")           # a warms the cache
        before = a.hacfs.fs.counters.get("vfs.stat")
        b.stat("/notes/recipe.txt")           # b hits it
        assert a.hacfs.fs.counters.get("vfs.stat") == before

    def test_relative_semantic_commands(self, sessions):
        a, b = sessions
        a.cd("/notes")
        a.smkdir("sub", "recipe")
        assert b.sls("/notes/sub")
        assert [n for n, _c, _t in b.sls("/notes/sub")] == ["recipe.txt"]
