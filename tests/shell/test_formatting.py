"""Listing/table formatting."""

from repro.shell.formatting import (long_listing, mode_string,
                                    render_metrics, render_table)
from repro.vfs.inode import InodeType


class TestModeString:
    def test_directory(self):
        assert mode_string(InodeType.DIRECTORY, 0o755) == "drwxr-xr-x"

    def test_file(self):
        assert mode_string(InodeType.FILE, 0o644) == "-rw-r--r--"

    def test_symlink(self):
        assert mode_string(InodeType.SYMLINK, 0o777) == "lrwxrwxrwx"

    def test_odd_bits(self):
        assert mode_string(InodeType.FILE, 0o640) == "-rw-r-----"


class TestLongListing:
    def test_rows(self):
        out = long_listing([
            ("f.txt", InodeType.FILE, 0o644, 120, 3.0, None, None),
            ("ln", InodeType.SYMLINK, 0o777, 2, 4.0, "/f.txt", "transient"),
            ("p", InodeType.SYMLINK, 0o777, 2, 4.0, "/g.txt", "permanent"),
        ])
        lines = out.splitlines()
        assert lines[0].startswith("-rw-r--r--") and "f.txt" in lines[0]
        assert "-> /f.txt" in lines[1] and "(t)" in lines[1]
        assert "(p)" in lines[2]

    def test_empty(self):
        assert long_listing([]) == ""


class TestRenderTable:
    def test_alignment_and_rule(self):
        out = render_table(["name", "n"], [["alpha", 1], ["b", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].startswith("alpha")
        # columns align
        assert lines[2].index("1") == lines[3].index("2")


class TestRenderMetrics:
    SNAPSHOT = {
        "counters": {"vfs.namei": 12, "engine.indexed": 3},
        "histograms": {"cba.candidate_blocks": {
            "count": 2, "sum": 6.0, "mean": 3.0, "min": 2.0, "max": 4.0,
            "buckets": {"le_10": 2, "overflow": 0}}},
        "spans": {"vfs.write_file": {
            "count": 5, "wall_ms": 1.25, "self_ms": 0.75}},
        "spans_dropped": 0,
    }

    def test_full_snapshot_sections(self):
        out = render_metrics(self.SNAPSHOT)
        counters, hists, spans = out.split("\n\n")
        assert counters.startswith("counter") and "vfs.namei" in counters
        assert "12" in counters
        assert hists.startswith("histogram")
        assert "cba.candidate_blocks" in hists and "3" in hists
        assert spans.startswith("span")
        assert "1.250" in spans and "0.750" in spans

    def test_counters_sorted(self):
        out = render_metrics({"counters": {"b.x": 1, "a.y": 2}})
        assert out.index("a.y") < out.index("b.x")

    def test_dropped_line_only_when_nonzero(self):
        assert "spans dropped" not in render_metrics(self.SNAPSHOT)
        snap = dict(self.SNAPSHOT, spans_dropped=7)
        assert "spans dropped: 7" in render_metrics(snap)

    def test_empty_snapshot(self):
        assert render_metrics({}) == "(no metrics recorded)"
        assert render_metrics({"counters": {}, "histograms": {},
                               "spans": {}, "spans_dropped": 0}) \
            == "(no metrics recorded)"
