"""Listing/table formatting."""

from repro.shell.formatting import long_listing, mode_string, render_table
from repro.vfs.inode import InodeType


class TestModeString:
    def test_directory(self):
        assert mode_string(InodeType.DIRECTORY, 0o755) == "drwxr-xr-x"

    def test_file(self):
        assert mode_string(InodeType.FILE, 0o644) == "-rw-r--r--"

    def test_symlink(self):
        assert mode_string(InodeType.SYMLINK, 0o777) == "lrwxrwxrwx"

    def test_odd_bits(self):
        assert mode_string(InodeType.FILE, 0o640) == "-rw-r-----"


class TestLongListing:
    def test_rows(self):
        out = long_listing([
            ("f.txt", InodeType.FILE, 0o644, 120, 3.0, None, None),
            ("ln", InodeType.SYMLINK, 0o777, 2, 4.0, "/f.txt", "transient"),
            ("p", InodeType.SYMLINK, 0o777, 2, 4.0, "/g.txt", "permanent"),
        ])
        lines = out.splitlines()
        assert lines[0].startswith("-rw-r--r--") and "f.txt" in lines[0]
        assert "-> /f.txt" in lines[1] and "(t)" in lines[1]
        assert "(p)" in lines[2]

    def test_empty(self):
        assert long_listing([]) == ""


class TestRenderTable:
    def test_alignment_and_rule(self):
        out = render_table(["name", "n"], [["alpha", 1], ["b", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].startswith("alpha")
        # columns align
        assert lines[2].index("1") == lines[3].index("2")
