"""The HacShell command layer."""

import pytest

from repro.errors import NotADirectory
from repro.shell.session import HacShell


@pytest.fixture
def shell(populated):
    return HacShell(populated)


class TestNavigation:
    def test_cwd_resolution(self, shell):
        assert shell.pwd() == "/"
        shell.cd("notes")
        assert shell.pwd() == "/notes"
        assert shell.resolve_path("x.txt") == "/notes/x.txt"
        assert shell.resolve_path("/abs") == "/abs"
        shell.cd("..")
        assert shell.pwd() == "/"

    def test_cd_to_file_fails(self, shell):
        with pytest.raises(NotADirectory):
            shell.cd("/notes/recipe.txt")

    def test_cd_through_symlink_canonicalises(self, shell):
        shell.hacfs.symlink("/notes", "/nlink")
        shell.cd("/nlink")
        assert shell.pwd() == "/notes"


class TestOrdinaryCommands:
    def test_ls(self, shell):
        assert shell.ls("/notes").splitlines() == ["fp-design.txt", "recipe.txt"]

    def test_ls_long_marks_classifications(self, shell):
        shell.smkdir("/fp", "fingerprint")
        shell.ln("/notes/recipe.txt", "/fp/recipe.txt")
        out = shell.ls("/fp", long=True)
        assert "(t)" in out and "(p)" in out and "->" in out

    def test_write_cat_cp_mv_rm(self, shell):
        shell.write("/tmp.txt", "hello shell\n")
        assert shell.cat("/tmp.txt") == "hello shell\n"
        shell.cp("/tmp.txt", "/copy.txt")
        shell.mv("/copy.txt", "/moved.txt")
        assert shell.cat("/moved.txt") == "hello shell\n"
        shell.rm("/moved.txt")
        shell.rm("/tmp.txt")
        assert not shell.hacfs.exists("/tmp.txt")

    def test_touch_and_stat(self, shell):
        shell.touch("/t")
        shell.touch("/t")  # idempotent
        assert shell.stat("/t").size == 0

    def test_mkdir_rmdir_relative(self, shell):
        shell.cd("/notes")
        shell.mkdir("sub")
        assert shell.hacfs.isdir("/notes/sub")
        shell.rmdir("sub")
        assert not shell.hacfs.exists("/notes/sub")


class TestSemanticCommands:
    def test_smkdir_and_squery(self, shell):
        shell.smkdir("/fp", "fingerprint")
        assert shell.squery("/fp") == "fingerprint"
        assert shell.squery("/notes") is None

    def test_schquery(self, shell):
        shell.smkdir("/q", "lunch")
        shell.schquery("/q", "recipe")
        assert [n for n, _c, _t in shell.sls("/q")] == ["recipe.txt"]
        shell.schquery("/q", None)
        assert shell.squery("/q") is None

    def test_sls_classifies(self, shell):
        shell.smkdir("/fp", "fingerprint")
        shell.ln("/notes/recipe.txt", "/fp/extra")
        rows = shell.sls("/fp")
        classes = {name: cls for name, cls, _t in rows}
        assert classes["extra"] == "permanent"
        assert classes["msg1.txt"] == "transient"

    def test_rm_then_sprohibited(self, shell):
        shell.smkdir("/fp", "fingerprint")
        shell.rm("/fp/msg1.txt")
        assert shell.sprohibited("/fp")

    def test_spermanent(self, shell):
        shell.smkdir("/fp", "fingerprint")
        shell.spermanent("/fp/msg1.txt")
        rows = dict((n, c) for n, c, _t in shell.sls("/fp"))
        assert rows["msg1.txt"] == "permanent"

    def test_sact(self, shell):
        shell.smkdir("/fp", "fingerprint")
        assert any("prototype works" in line
                   for line in shell.sact("/fp/msg1.txt"))

    def test_ssync_returns_plan(self, shell):
        shell.write("/new.txt", "fingerprint appears\n")
        shell.hacfs.clock.tick()
        plan = shell.ssync("/")
        assert plan.added

    def test_glimpse_adhoc_search(self, shell):
        hits = shell.glimpse("fingerprint")
        assert "/notes/fp-design.txt" in hits
        hits = shell.glimpse("fingerprint", scope_path="/mail")
        assert hits == ["/mail/msg1.txt"]

    def test_mounts_via_shell(self, shell, library):
        shell.mkdir("/lib")
        shell.smount("/lib", library)
        shell.smkdir("/fp", "fingerprint")
        assert any(t.startswith("digilib://")
                   for _n, _c, t in shell.sls("/fp"))
        shell.sunmount("/lib")

    def test_syntactic_mount_via_shell(self, shell):
        from repro.vfs.filesystem import FileSystem
        other = FileSystem()
        other.write_file("/r.txt", b"remote fingerprint")
        shell.mkdir("/mnt")
        shell.mount("/mnt", other)
        shell.ssync("/")
        assert "/mnt/r.txt" in shell.glimpse("fingerprint")
        assert shell.unmount("/mnt") is other
