"""The breaker-driven admission gate: downgrade, shed, and its limits."""

import pytest

from repro.core.admission import AdmissionController
from repro.errors import AdmissionRejected, BackendUnavailable


def _clustered(populated, shards=2):
    """Adopt a sharded cluster so a shard can be deterministically killed."""
    from repro.cluster import ClusterFactory

    factory = ClusterFactory(shards=shards, latency=0.0)
    cluster = factory(populated._load_doc, counters=populated.counters,
                      clock=populated.clock,
                      transducer=populated.engine.transducer,
                      num_blocks=populated.engine.num_blocks,
                      fast_path=populated.engine.fast_path)
    populated.adopt_engine(cluster)
    return cluster


def test_disabled_by_default_and_fully_transparent(populated):
    admission = populated.admission
    assert admission.enabled is False
    cluster = _clustered(populated)
    cluster.kill_shard("shard0")
    # degraded world, gate off: nothing is downgraded or shed
    assert admission.admit_read("strong") == "strong"
    admission.admit_write("/notes/x.txt")           # does not raise
    populated.write_file("/notes/x.txt", b"still accepted\n")
    assert admission.status()["reads"] == 0
    assert admission.status()["writes"] == 0


def test_healthy_world_admits_everything(populated):
    admission = populated.admission
    admission.enable()
    assert admission.state() == "healthy"
    assert admission.degraded_backends() == []
    assert admission.admit_read("strong") == "strong"
    assert admission.admit_read("snapshot") == "snapshot"
    admission.admit_write("/notes/a.txt")
    assert admission.status()["downgraded_reads"] == 0
    assert admission.status()["shed_writes"] == 0


def test_degraded_backend_downgrades_strong_reads(populated):
    cluster = _clustered(populated)
    admission = populated.admission
    admission.enable()
    cluster.kill_shard("shard1")
    assert admission.degraded_backends() == ["shard.shard1"]
    assert admission.state() == "degraded"
    assert admission.admit_read("strong") == "snapshot"
    # snapshot reads pass through untouched
    assert admission.admit_read("snapshot") == "snapshot"
    assert admission.status()["downgraded_reads"] == 1
    cluster.revive_shard("shard1")
    assert admission.admit_read("strong") == "strong"


def test_overload_sheds_writes_before_any_bytes_land(populated):
    cluster = _clustered(populated)
    admission = populated.admission
    admission.max_queue_depth = 2
    populated.maintenance.set_mode("batched")
    populated.watch("/notes")
    # fill the queue while healthy: a merely-degraded system still admits
    populated.write_file("/notes/q1.txt", b"fingerprint one\n")
    populated.write_file("/notes/q2.txt", b"fingerprint two\n")
    assert populated.maintenance.pending >= 2
    admission.enable()
    cluster.kill_shard("shard0")
    assert admission.state() == "overloaded"
    with pytest.raises(AdmissionRejected) as exc:
        populated.write_file("/notes/q3.txt", b"never lands\n")
    assert isinstance(exc.value, BackendUnavailable)
    assert "shard.shard0" in str(exc.value)
    assert not populated.exists("/notes/q3.txt", follow=False)
    assert admission.status()["shed_writes"] == 1
    # reads keep serving (downgraded), snapshot path untouched
    assert admission.admit_read("strong") == "snapshot"


def test_enqueue_gate_spares_removes_and_moves(populated):
    cluster = _clustered(populated)
    admission = populated.admission
    admission.max_queue_depth = 1
    populated.maintenance.set_mode("batched")
    populated.watch("/notes")
    populated.write_file("/notes/held.txt", b"fingerprint pending\n")
    assert populated.maintenance.pending >= 1
    admission.enable()
    cluster.kill_shard("shard0")
    with pytest.raises(AdmissionRejected):
        populated.maintenance.note_upsert(("k", 1), "/notes/other.txt", 1.0)
    # removals and moves must always be accepted — shedding them would
    # leave ghost docs / stranded paths (see the scheduler's docstring)
    populated.unlink("/notes/held.txt")
    populated.rename("/notes/recipe.txt", "/notes/recipe2.txt")


def test_state_ladder_and_validation(populated):
    cluster = _clustered(populated)
    admission = populated.admission
    admission.enable()
    assert admission.state() == "healthy"
    cluster.kill_shard("shard0")
    assert admission.state() == "degraded"
    cluster.revive_shard("shard0")
    assert admission.state() == "healthy"
    with pytest.raises(ValueError):
        AdmissionController(populated, max_queue_depth=0)


def test_status_shape_and_health_integration(populated):
    admission = populated.admission
    admission.enable()
    status = admission.status()
    assert set(status) == {"enabled", "state", "max_queue_depth", "pending",
                           "degraded_backends", "reads", "writes",
                           "downgraded_reads", "shed_writes"}
    report = populated.health()
    assert report["admission"]["enabled"] is True
    assert report["admission"]["state"] == "healthy"
    admission.disable()
    assert populated.health()["admission"]["enabled"] is False
