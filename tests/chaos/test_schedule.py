"""Seeded schedule generation: determinism, ordering, and validation."""

import pytest

from repro.chaos.schedule import (ChaosEvent, ChaosSchedule, KIND_ORDER,
                                  generate)


def test_same_seed_same_schedule():
    a = generate(7, steps=50, shard_ids=("shard0", "shard1"))
    b = generate(7, steps=50, shard_ids=("shard0", "shard1"))
    assert a.to_obj() == b.to_obj()


def test_different_seeds_differ():
    a = generate(1, steps=50, shard_ids=("shard0",))
    b = generate(2, steps=50, shard_ids=("shard0",))
    assert a.to_obj() != b.to_obj()


def test_every_outage_schedules_its_recovery():
    sched = generate(3, steps=60, shard_ids=("shard0", "shard1", "shard2"))
    kinds = [e.kind for e in sched.events]
    assert kinds.count("kill_shard") == 3
    assert kinds.count("revive_shard") == 3
    assert kinds.count("remote_down") == kinds.count("remote_up") == 1
    by_shard = {}
    for event in sched.events:
        if event.kind in ("kill_shard", "revive_shard"):
            by_shard.setdefault(event.args["shard"], []).append(event)
    for shard, pair in by_shard.items():
        kill, revive = pair
        assert kill.kind == "kill_shard" and revive.kind == "revive_shard"
        assert kill.step <= revive.step


def test_all_events_land_inside_the_soak():
    for seed in range(5):
        sched = generate(seed, steps=40, shard_ids=("shard0",))
        assert all(1 <= e.step < sched.steps for e in sched.events)


def test_within_step_kind_order_is_fixed():
    # build a deliberately shuffled step and check .at() re-orders it
    events = [ChaosEvent(4, "revive_shard", {"shard": "shard0"}),
              ChaosEvent(4, "crash", {"offset": 0}),
              ChaosEvent(4, "kill_shard", {"shard": "shard1"}),
              ChaosEvent(4, "enospc", {"burst": 1})]
    sched = ChaosSchedule(events, steps=10, seed=0)
    kinds = [e.kind for e in sched.at(4)]
    assert kinds == sorted(kinds, key=KIND_ORDER.index)
    assert kinds[0] == "kill_shard" and kinds[-1] == "revive_shard"
    assert sched.at(5) == []
    assert len(sched) == 4


def test_monolith_lag_events_target_no_shard():
    sched = generate(9, steps=40, shard_ids=(), lag_events=2)
    lags = [e for e in sched.events if e.kind == "lag"]
    assert len(lags) == 2
    assert all(e.args["shard"] is None for e in lags)
    assert all(1 <= e.args["publishes"] <= 3 for e in lags)


def test_unknown_kind_and_short_soak_rejected():
    with pytest.raises(ValueError):
        ChaosEvent(0, "meteor_strike")
    with pytest.raises(ValueError):
        generate(1, steps=5)
