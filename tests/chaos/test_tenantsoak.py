"""The tenant-isolation soak: chaos at tenant A, bit-identity for B."""

import pytest

from repro.chaos.tenantsoak import (TenantIsolationSoak, run_soak,
                                    tenant_digest)
from repro.core.hacfs import HacFileSystem


class TestTenantDigest:
    def test_digest_is_deterministic_and_state_sensitive(self):
        worlds = []
        for _ in range(2):
            hac = HacFileSystem()
            t = hac.tenants.create("lib")
            t.makedirs("/stacks")
            t.write_file("/stacks/v0.txt", b"fingerprint volume zero")
            t.smkdir("/q", "fingerprint")
            worlds.append((hac, t))
        (_, a), (_, b) = worlds
        assert tenant_digest(a) == tenant_digest(b)
        b.write_file("/stacks/v1.txt", b"fingerprint volume one")
        assert tenant_digest(a) != tenant_digest(b)

    def test_digest_ignores_co_tenants_and_host_state(self):
        solo_hac = HacFileSystem()
        solo = solo_hac.tenants.create("lib")
        shared_hac = HacFileSystem()
        shared = shared_hac.tenants.create("lib")
        noisy = shared_hac.tenants.create("noisy")
        for t in (solo, shared):
            t.write_file("/v.txt", b"fingerprint volume")
        noisy.write_file("/junk.txt", b"unrelated fingerprint churn")
        shared_hac.makedirs("/host")
        shared_hac.write_file("/host/h.txt", b"host fingerprint file")
        assert tenant_digest(solo) == tenant_digest(shared)


class TestSoakRuns:
    @pytest.mark.parametrize("k", [0, 3])
    def test_short_soak_holds_the_isolation_contract(self, k):
        report = run_soak(seed=0, k=k, steps=12)
        assert report["ok"], report["violations"]
        assert report["beta_digest"] == report["oracle_digest"]
        assert report["beta_applied"] == 12
        assert report["alpha_applied"] > 0

    def test_soak_survives_and_counts_crash_recovery(self):
        # seed 0 at 20 steps is known to arm crashes that actually fire
        soak = TenantIsolationSoak(seed=0, k=0, steps=20)
        report = soak.run()
        assert report["ok"], report["violations"]
        assert report["crashes_hit"] == report["recoveries"]

    def test_report_shape_is_json_ready(self):
        import json

        report = run_soak(seed=3, k=0, steps=6)
        parsed = json.loads(json.dumps(report))
        assert set(parsed) >= {"seed", "k", "steps", "beta_digest",
                               "oracle_digest", "violations", "ok"}
