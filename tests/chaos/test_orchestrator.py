"""The twin-world orchestrator: worlds, probes, healing, and soak smoke."""

import pytest

from repro.chaos import (ChaosRun, ChaosWorld, check_invariants, heal,
                         state_digest, PROBE_QUERIES)
from repro.chaos.schedule import ChaosEvent, ChaosSchedule


def test_world_setup_is_complete():
    world = ChaosWorld(k=0)
    hac = world.hac
    assert hac.fs.fsid == "hac#soak"
    assert sorted(hac.listdir("/")) == ["lib", "mail", "notes",
                                       "q-fp", "q-proj"]
    assert hac.get_query("/q-fp") == "fingerprint"
    # the remote mount answers through the semantic directory
    assert any(name.startswith("fp-") for name in hac.listdir("/q-fp"))
    assert world.shard_ids() == []


def test_cluster_world_shards_and_batched_mode():
    world = ChaosWorld(k=3, batched=True, admission=True, max_queue_depth=9)
    assert world.shard_ids() == ["shard0", "shard1", "shard2"]
    assert world.hac.maintenance.mode == "batched"
    assert world.hac.admission.enabled is True
    assert world.hac.admission.max_queue_depth == 9


def test_two_fresh_worlds_share_a_digest():
    a, b = ChaosWorld(k=0), ChaosWorld(k=0)
    assert state_digest(a, queries=PROBE_QUERIES) == \
        state_digest(b, queries=PROBE_QUERIES)
    # ...and a cluster world agrees with a monolith on observable state
    c = ChaosWorld(k=2)
    assert state_digest(c, queries=PROBE_QUERIES) == \
        state_digest(a, queries=PROBE_QUERIES)


def test_digest_reflects_observable_changes():
    a, b = ChaosWorld(k=0), ChaosWorld(k=0)
    a.hac.write_file("/notes/extra.txt", b"fingerprint extra\n")
    a.shell.ssync("/")
    assert state_digest(a, queries=PROBE_QUERIES) != \
        state_digest(b, queries=PROBE_QUERIES)


def test_recover_rewires_the_world():
    world = ChaosWorld(k=0, batched=True, admission=True)
    world.recover()
    assert world.hac.maintenance.mode == "batched"
    assert world.hac.admission.enabled is True
    # the remote mount survives the reboot re-wiring
    assert any(name.startswith("fp-") for name in world.hac.listdir("/q-fp"))
    assert not check_invariants(world)


def test_heal_recloses_a_tripped_breaker():
    world = ChaosWorld(k=0)
    world.service.transport.failure_rate = 1.0
    for _ in range(6):
        world.clock.tick()
        try:
            world.shell.ssync("/")
        except Exception:
            pass
        if world.remote_breaker().state == "open":
            break
    assert world.remote_breaker().state == "open"
    assert check_invariants(world)          # degraded: violations found
    heal(world)
    assert world.remote_breaker().state == "closed"
    assert not check_invariants(world)


def test_soak_smoke_monolith_all_invariants_hold():
    run = ChaosRun(seed=5, k=0, steps=20, windows=2)
    report = run.run()
    assert report["ok"], report["violations"]
    assert report["steps"] == 20
    assert report["windows"] >= 2
    assert report["applied"] > 0
    assert report["admission"]["enabled"] is True


def test_soak_smoke_cluster_all_invariants_hold():
    run = ChaosRun(seed=2, k=3, steps=20, windows=2)
    report = run.run()
    assert report["ok"], report["violations"]
    # the schedule actually exercised the cluster fault plane
    kinds = {e.kind for e in run.schedule.events}
    assert "kill_shard" in kinds and "revive_shard" in kinds


def test_soak_report_is_reproducible():
    a = ChaosRun(seed=6, k=0, steps=15, windows=1).run()
    b = ChaosRun(seed=6, k=0, steps=15, windows=1).run()
    assert a == b


def test_explicit_schedule_crash_is_recovered():
    sched = ChaosSchedule([ChaosEvent(2, "crash", {"offset": 0})],
                          steps=12, seed=0)
    run = ChaosRun(seed=1, k=0, steps=12, windows=1, schedule=sched)
    report = run.run()
    assert report["ok"], report["violations"]
    assert report["recoveries"] == report["crashes_hit"]
    assert report["crashes_hit"] >= 1


def test_snapshot_reads_never_fail_in_a_soak():
    run = ChaosRun(seed=3, k=0, steps=25, windows=1)
    report = run.run()
    assert report["reads_snapshot"] > 0
    # the serving-tier promise: snapshot reads are in-process and must
    # keep answering whatever is on fire
    assert run.chaos.counters.get("chaos.reads_snapshot_failed") == 0
