"""The engine's SFS-style query-result cache."""

import pytest

from repro.cba.engine import CBAEngine
from repro.cba.queryparser import parse_query
from repro.util.bitmap import Bitmap

CORPUS = {"a": "alpha beta", "b": "alpha gamma", "c": "delta"}


def build(cache_size=64, fast_path=True):
    store = dict(CORPUS)
    eng = CBAEngine(loader=lambda k: store.get(k, ""), cache_size=cache_size,
                    fast_path=fast_path)
    eng.store = store
    for key in sorted(store):
        eng.index_document(key, path=f"/{key}", mtime=0.0)
    return eng


class TestCacheHits:
    def test_second_identical_search_hits(self):
        eng = build()
        ast = parse_query("alpha")
        r1 = eng.search(ast)
        scanned = eng.counters.get("engine.docs_scanned")
        r2 = eng.search(ast)
        assert r2 == r1
        assert eng.counters.get("engine.docs_scanned") == scanned
        assert eng.counters.get("engine.cache_hits") == 1

    def test_cached_result_is_a_copy(self):
        eng = build()
        ast = parse_query("alpha")
        r1 = eng.search(ast)
        r1.add(999)  # caller mutates its copy
        assert 999 not in eng.search(ast)

    def test_different_scope_different_entry(self):
        eng = build()
        ast = parse_query("alpha")
        full = eng.search(ast)
        narrowed = eng.search(ast, Bitmap([eng.doc_id_of("a")]))
        assert len(full) == 2 and len(narrowed) == 1

    def test_structurally_equal_queries_share_entry(self):
        eng = build()
        eng.search(parse_query("alpha AND beta"))
        eng.search(parse_query("alpha beta"))  # juxtaposition, same AST
        assert eng.counters.get("engine.cache_hits") == 1

    def test_matchall_not_cached(self):
        eng = build()
        eng.search(parse_query("*"))
        eng.search(parse_query("*"))
        assert eng.counters.get("engine.cache_hits") == 0


class TestInvalidation:
    def _update_a(e):
        e.store["a"] = "beta only"
        e.update_document("a", path="/a", mtime=1.0)

    def _add_d(e):
        e.store["d"] = "alpha new"
        e.index_document("d", path="/d", mtime=0.0)

    @pytest.mark.parametrize("mutate", [
        _add_d,
        lambda e: e.remove_document("a"),
        _update_a,
    ])
    def test_index_mutations_invalidate(self, mutate):
        eng = build()
        ast = parse_query("alpha")
        before = eng.search(ast)
        mutate(eng)
        after = eng.search(ast)
        assert eng.counters.get("engine.cache_hits") == 0
        assert after == eng.naive_search(ast)
        assert before != after or True  # results recomputed either way

    def test_capacity_evicts_lru(self):
        eng = build(cache_size=2)
        eng.search(parse_query("alpha"))
        eng.search(parse_query("beta"))
        eng.search(parse_query("gamma"))   # evicts "alpha"
        eng.search(parse_query("alpha"))   # miss again
        assert eng.counters.get("engine.cache_hits") == 0

    def test_cache_disabled(self):
        # scan-path engine: with the fast path on, term queries never scan,
        # so there would be nothing for the missing cache to save
        eng = build(cache_size=0, fast_path=False)
        ast = parse_query("alpha")
        eng.search(ast)
        eng.search(ast)
        assert eng.counters.get("engine.cache_hits") == 0
        assert eng.counters.get("engine.docs_scanned") >= 2

    def test_fine_grained_invalidation_spares_unrelated_entries(self):
        # blocks partition docs by id; mutating a doc in one block must not
        # evict a cached result whose candidate blocks lie elsewhere
        eng = build()
        alpha = parse_query("alpha")
        eng.search(alpha)
        # doc id 3 lands in block 3 (64 blocks); "delta" only touches "c"
        eng.store["d"] = "unrelated zeta"
        eng.index_document("d", path="/d", mtime=0.0)
        assert eng.counters.get("engine.cache_survivals") >= 0  # swept
        eng.search(alpha)
        # the alpha entry was evicted or survived, but either way the
        # answer is right; a *survival* must have produced a cache hit
        if eng.counters.get("engine.cache_survivals"):
            assert eng.counters.get("engine.cache_hits") == 1
        assert eng.search(alpha) == eng.naive_search(alpha)


class TestMutationSweepCost:
    """Condition (b) of the invalidation sweep — recomputing candidate
    blocks per cached entry — only runs when the mutation could have
    raised some block's candidacy (a term its block lacked appeared)."""

    def test_pure_removal_skips_candidate_recompute(self):
        eng = build()
        queries = [parse_query(q) for q in ("alpha", "beta", "gamma")]
        for q in queries:
            eng.search(q)
        lookups = eng.counters.get("glimpse.block_lookups")
        eng.remove_document("c")  # removals only clear block bits
        assert eng.counters.get("glimpse.block_lookups") == lookups
        assert eng.counters.get("engine.cache_survivals") == len(queries)
        for q in queries:
            assert eng.search(q) == eng.naive_search(q)
        assert eng.counters.get("engine.cache_hits") == len(queries)

    def test_same_terms_update_skips_candidate_recompute(self):
        eng = build()
        alpha = parse_query("alpha")
        eng.search(alpha)
        lookups = eng.counters.get("glimpse.block_lookups")
        # same text, new mtime: churn that re-adds the block's own terms
        eng.update_document("c", path="/c", mtime=1.0)
        assert eng.counters.get("glimpse.block_lookups") == lookups
        assert eng.search(alpha) == eng.naive_search(alpha)

    def test_growing_update_still_recomputes_candidacy(self):
        eng = build()
        alpha = parse_query("alpha")
        eng.search(alpha)
        # doc "c" (its own block) gains "alpha": the entry's stored blocks
        # miss that block, so only the recompute can catch it — must evict
        eng.store["c"] = "delta alpha"
        eng.update_document("c", path="/c", mtime=1.0)
        assert eng.counters.get("engine.cache_hits") == 0
        after = eng.search(alpha)
        assert after == eng.naive_search(alpha)
        assert eng.doc_id_of("c") in after


class TestLRUDiscipline:
    def test_hit_moves_entry_to_mru(self):
        # capacity 2: A, B cached; hitting A makes B the LRU, so caching C
        # evicts B (not A)
        eng = build(cache_size=2)
        a, b, c = (parse_query(q) for q in ("alpha", "beta", "gamma"))
        eng.search(a)
        eng.search(b)
        eng.search(a)                      # hit: A becomes MRU
        eng.search(c)                      # evicts B, the true LRU
        hits = eng.counters.get("engine.cache_hits")
        eng.search(a)                      # must still be cached
        assert eng.counters.get("engine.cache_hits") == hits + 1
        eng.search(b)                      # must have been evicted
        assert eng.counters.get("engine.cache_hits") == hits + 1

    def test_eviction_drops_true_lru(self):
        eng = build(cache_size=3)
        queries = [parse_query(q) for q in ("alpha", "beta", "gamma")]
        for q in queries:
            eng.search(q)
        eng.search(queries[0])             # refresh "alpha"
        eng.search(parse_query("delta"))   # evicts "beta"
        hits = eng.counters.get("engine.cache_hits")
        eng.search(queries[2])             # "gamma" survived
        eng.search(queries[0])             # "alpha" survived
        assert eng.counters.get("engine.cache_hits") == hits + 2
        eng.search(queries[1])             # "beta" is gone
        assert eng.counters.get("engine.cache_hits") == hits + 2

    def test_clear_query_cache_forces_cold_rescan(self):
        eng = build(fast_path=False)
        ast = parse_query("alpha")
        eng.search(ast)
        scanned = eng.counters.get("engine.docs_scanned")
        eng.clear_query_cache()
        eng.search(ast)
        assert eng.counters.get("engine.cache_hits") == 0
        assert eng.counters.get("engine.docs_scanned") == 2 * scanned

    def test_clear_query_cache_drops_verify_memo(self):
        # fast path on, phrase query (not postings-answerable): verdicts are
        # memoised; clearing the cache must drop them so the re-scan is cold
        eng = build()
        ast = parse_query('"alpha beta"')
        eng.search(ast)
        scanned = eng.counters.get("engine.docs_scanned")
        assert scanned >= 1
        eng.clear_query_cache()
        eng.search(ast)
        assert eng.counters.get("engine.docs_scanned") == 2 * scanned
        assert eng.counters.get("engine.docs_scan_avoided") == 0


class TestThroughHac:
    def test_reevaluation_reuses_searches(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.counters.reset()
        # a no-change ssync re-evaluates /fp; reindex is a no-op so the
        # cached search from smkdir survives... but reindex path refresh
        # may bump; what matters: repeated cascades in one generation reuse
        populated.consistency.reevaluate_all()
        populated.consistency.reevaluate_all()
        assert populated.counters.get("engine.cache_hits") >= 1
