"""The engine's SFS-style query-result cache."""

import pytest

from repro.cba.engine import CBAEngine
from repro.cba.queryparser import parse_query
from repro.util.bitmap import Bitmap

CORPUS = {"a": "alpha beta", "b": "alpha gamma", "c": "delta"}


def build(cache_size=64):
    store = dict(CORPUS)
    eng = CBAEngine(loader=lambda k: store.get(k, ""), cache_size=cache_size)
    eng.store = store
    for key in sorted(store):
        eng.index_document(key, path=f"/{key}", mtime=0.0)
    return eng


class TestCacheHits:
    def test_second_identical_search_hits(self):
        eng = build()
        ast = parse_query("alpha")
        r1 = eng.search(ast)
        scanned = eng.counters.get("engine.docs_scanned")
        r2 = eng.search(ast)
        assert r2 == r1
        assert eng.counters.get("engine.docs_scanned") == scanned
        assert eng.counters.get("engine.cache_hits") == 1

    def test_cached_result_is_a_copy(self):
        eng = build()
        ast = parse_query("alpha")
        r1 = eng.search(ast)
        r1.add(999)  # caller mutates its copy
        assert 999 not in eng.search(ast)

    def test_different_scope_different_entry(self):
        eng = build()
        ast = parse_query("alpha")
        full = eng.search(ast)
        narrowed = eng.search(ast, Bitmap([eng.doc_id_of("a")]))
        assert len(full) == 2 and len(narrowed) == 1

    def test_structurally_equal_queries_share_entry(self):
        eng = build()
        eng.search(parse_query("alpha AND beta"))
        eng.search(parse_query("alpha beta"))  # juxtaposition, same AST
        assert eng.counters.get("engine.cache_hits") == 1

    def test_matchall_not_cached(self):
        eng = build()
        eng.search(parse_query("*"))
        eng.search(parse_query("*"))
        assert eng.counters.get("engine.cache_hits") == 0


class TestInvalidation:
    def _update_a(e):
        e.store["a"] = "beta only"
        e.update_document("a", path="/a", mtime=1.0)

    @pytest.mark.parametrize("mutate", [
        lambda e: e.index_document("d", path="/d", mtime=0.0, text="alpha new"),
        lambda e: e.remove_document("a"),
        _update_a,
    ])
    def test_index_mutations_invalidate(self, mutate):
        eng = build()
        ast = parse_query("alpha")
        before = eng.search(ast)
        mutate(eng)
        after = eng.search(ast)
        assert eng.counters.get("engine.cache_hits") == 0
        assert after == eng.naive_search(ast)
        assert before != after or True  # results recomputed either way

    def test_capacity_evicts_lru(self):
        eng = build(cache_size=2)
        eng.search(parse_query("alpha"))
        eng.search(parse_query("beta"))
        eng.search(parse_query("gamma"))   # evicts "alpha"
        eng.search(parse_query("alpha"))   # miss again
        assert eng.counters.get("engine.cache_hits") == 0

    def test_cache_disabled(self):
        eng = build(cache_size=0)
        ast = parse_query("alpha")
        eng.search(ast)
        eng.search(ast)
        assert eng.counters.get("engine.cache_hits") == 0
        assert eng.counters.get("engine.docs_scanned") >= 2


class TestThroughHac:
    def test_reevaluation_reuses_searches(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.counters.reset()
        # a no-change ssync re-evaluates /fp; reindex is a no-op so the
        # cached search from smkdir survives... but reindex path refresh
        # may bump; what matters: repeated cascades in one generation reuse
        populated.consistency.reevaluate_all()
        populated.consistency.reevaluate_all()
        assert populated.counters.get("engine.cache_hits") >= 1
