"""Unit tests for read replicas and the engine's publish/serve surface."""

import pytest

from repro.cba.engine import CBAEngine, IndexOp
from repro.cba.queryparser import parse_query
from repro.cba.snapshot import ReadReplica

CORPUS = {
    "a": "the fingerprint matching system for the fbi",
    "b": "image processing of fingerprint images",
    "c": "banana bread recipe",
    "d": "notes on the murder case with fingerprint evidence",
}
QUERIES = ["fingerprint", "banana AND bread", "fingerprint AND NOT images"]


def build_engine(**kwargs):
    store = dict(CORPUS)
    eng = CBAEngine(loader=lambda k: store.get(k, ""), **kwargs)
    eng.store = store  # test hook
    for key in sorted(store):
        eng.index_document(key, path=f"/{key}.txt", mtime=1.0)
    return eng


def answers(backend):
    return {q: backend.search(parse_query(q)).to_bytes() for q in QUERIES}


@pytest.fixture
def engine():
    return build_engine()


class TestBufferDiscipline:
    def test_no_replicas_means_no_buffer(self, engine):
        """Publishing is free until somebody actually reads snapshots:
        without replicas the op log must stay empty."""
        engine.store["e"] = "late arrival"
        engine.index_document("e", path="/e.txt", mtime=2.0)
        assert engine.snapshot_info()["pending_ops"] == 0
        assert engine.publish() == 1
        assert engine.publish() == 2

    def test_mutations_buffer_once_a_replica_exists(self, engine):
        engine.attach_replica()
        engine.store["e"] = "late arrival"
        engine.index_document("e", path="/e.txt", mtime=2.0)
        engine.remove_document("c")
        info = engine.snapshot_info()
        assert info["pending_ops"] == 2
        engine.publish()
        assert engine.snapshot_info()["pending_ops"] == 0

    def test_lagged_replica_pins_the_buffer(self, engine):
        fresh = engine.attach_replica("fresh")
        engine.attach_replica("slow", lag=1)
        engine.store["e"] = "late arrival"
        engine.index_document("e", path="/e.txt", mtime=2.0)
        engine.publish()
        # the slow replica has not replayed the op, so it cannot be dropped
        assert engine.snapshot_info()["pending_ops"] == 1
        assert fresh.version > [r for r in engine.replicas
                                if r.replica_id == "slow"][0].version
        engine.publish()  # lag expires, both catch up, buffer truncates
        assert engine.snapshot_info()["pending_ops"] == 0
        assert len({r.version for r in engine.replicas}) == 1


class TestHydrationAndReplay:
    def test_attach_matches_primary_bit_for_bit(self, engine):
        replica = engine.attach_replica()
        assert answers(replica) == answers(engine)
        assert len(replica) == len(engine)
        assert replica.all_docs().to_bytes() == engine.all_docs().to_bytes()

    def test_replica_is_isolated_until_publish(self, engine):
        replica = engine.attach_replica()
        before = answers(engine)
        engine.store["c"] = "now fingerprint themed"
        engine.update_document("c", path="/c.txt", mtime=2.0)
        assert answers(replica) == before
        version = engine.publish()
        assert replica.version == version
        assert answers(replica) == answers(engine)

    def test_every_op_kind_replays(self, engine):
        replica = engine.attach_replica()
        engine.store["e"] = "brand new banana notes"
        engine.index_document("e", path="/e.txt", mtime=2.0)
        engine.store["a"] = "rewritten without the magic word"
        engine.update_document("a", path="/a.txt", mtime=2.0)
        engine.remove_document("d")
        engine.rename_document("b", "/moved/b.txt")
        engine.publish()
        assert answers(replica) == answers(engine)
        assert replica.doc_by_key("b").path == "/moved/b.txt"
        assert replica.doc_by_key("d") is None
        assert replica.doc_by_id(engine.doc_id_of("e")).key == "e"
        # replayed ids keep the allocator in step with the primary
        assert replica.engine._next_doc_id == engine._next_doc_id

    def test_replica_work_is_charged_to_replica_counters(self, engine):
        replica = engine.attach_replica()
        searched = engine.counters.get("engine.searches")
        replica.search(parse_query("fingerprint"))
        assert engine.counters.get("engine.searches") == searched
        assert replica.counters.get("engine.searches") > 0


class TestRoutingAndControls:
    def test_view_attaches_lazily_and_prefers_freshest(self, engine):
        assert engine.replicas == []
        view = engine.snapshot_view()
        assert isinstance(view, ReadReplica)
        engine.attach_replica("slow", lag=1)
        engine.store["e"] = "fresh fingerprint"
        engine.index_document("e", path="/e.txt", mtime=2.0)
        engine.publish()
        # the lagged replica is never routed to over a fresh one
        for _ in range(4):
            assert engine.snapshot_view().replica_id != "slow"

    def test_equally_fresh_replicas_rotate(self, engine):
        engine.attach_replica("r0")
        engine.attach_replica("r1")
        seen = {engine.snapshot_view().replica_id for _ in range(4)}
        assert seen == {"r0", "r1"}

    def test_set_replica_lag_unknown_id(self, engine):
        engine.attach_replica("r0")
        with pytest.raises(KeyError):
            engine.set_replica_lag("nope", 1)

    def test_snapshot_info_shape(self, engine):
        engine.attach_replica("r0", lag=2)
        info = engine.snapshot_info()
        assert info["version"] == 0
        assert info["replicas"] == [{"id": "r0", "version": 0, "lag": 2}]

    def test_op_log_entries_are_self_contained(self, engine):
        """Shipped ops carry terms and frozen text — replay must never
        consult the primary's loader (that is what keeps replicas off the
        live tree)."""
        engine.attach_replica()
        engine.store["e"] = "ephemeral banana"
        engine.index_document("e", path="/e.txt", mtime=2.0)
        op = engine._pending_ops[0]
        assert isinstance(op, IndexOp)
        assert op.terms and op.text == "ephemeral banana"
        del engine.store["e"]  # primary text gone; replay still works
        engine.publish()
        replica = engine.snapshot_view()
        assert replica.doc_by_key("e") is not None
        assert "banana" in replica.engine.loader("e")
