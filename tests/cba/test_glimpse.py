"""Unit tests for the block-level index and the lexicon."""

import pytest

from repro.cba.glimpse import GlimpseIndex
from repro.cba.lexicon import Lexicon
from repro.cba.queryast import And, Approx, DirRef, MatchAll, Not, Or, Phrase, Term


class TestLexicon:
    def test_intern_stable(self):
        lex = Lexicon()
        assert lex.intern("a") == lex.intern("a")
        assert lex.intern("a") != lex.intern("b")

    def test_occurrence_counting(self):
        lex = Lexicon()
        lex.add_occurrence("w")
        lex.add_occurrence("w")
        assert lex.df("w") == 2
        lex.drop_occurrence("w")
        assert lex.df("w") == 1
        lex.drop_occurrence("w")
        assert "w" not in lex
        assert lex.df("w") == 0

    def test_id_recycled_after_retirement(self):
        lex = Lexicon()
        tid = lex.add_occurrence("gone")
        lex.drop_occurrence("gone")
        assert lex.add_occurrence("fresh") == tid

    def test_lookup_never_allocates(self):
        lex = Lexicon()
        assert lex.lookup("nope") is None
        assert len(lex) == 0

    def test_drop_unknown_is_none(self):
        assert Lexicon().drop_occurrence("ghost") is None

    def test_terms_listing(self):
        lex = Lexicon()
        lex.add_occurrence("a")
        lex.add_occurrence("a")
        lex.add_occurrence("b")
        assert dict(lex.terms()) == {"a": 2, "b": 1}


@pytest.fixture
def index():
    idx = GlimpseIndex(num_blocks=4)
    docs = {
        0: {"fingerprint", "sensor"},
        1: {"image", "processing"},
        2: {"fingerprint", "image"},
        3: {"recipe", "banana"},
        4: {"fingerprint", "database"},   # same block as doc 0 (4 % 4 == 0)
    }
    for doc_id, terms in docs.items():
        idx.add(doc_id, terms)
    return idx


class TestMaintenance:
    def test_len_and_contains(self, index):
        assert len(index) == 5
        assert 0 in index and 99 not in index

    def test_duplicate_add_rejected(self, index):
        with pytest.raises(ValueError):
            index.add(0, {"x"})

    def test_remove_unknown_rejected(self, index):
        with pytest.raises(KeyError):
            index.remove(99)

    def test_remove_keeps_sibling_postings(self, index):
        # docs 0 and 4 share block 0 and the term "fingerprint"
        index.remove(0)
        blocks = index.candidate_blocks(Term("fingerprint"))
        assert 0 in blocks  # doc 4 still holds the term in block 0

    def test_remove_prunes_empty_postings(self, index):
        index.remove(3)
        assert not index.candidate_blocks(Term("banana"))

    def test_update_changes_terms(self, index):
        index.update(3, {"fingerprint"})
        assert 3 in index.docs_in_blocks(
            index.candidate_blocks(Term("fingerprint")))
        assert not index.candidate_blocks(Term("banana"))

    def test_block_sizes(self, index):
        sizes = index.block_sizes()
        assert sizes[0] == 2       # docs 0 and 4
        assert sum(sizes.values()) == 5


class TestCandidates:
    def test_term_blocks(self, index):
        blocks = index.candidate_blocks(Term("fingerprint"))
        assert sorted(blocks) == [0, 2]   # docs 0,4 in block 0; doc 2 in block 2

    def test_unknown_term_empty(self, index):
        assert not index.candidate_blocks(Term("zzz"))

    def test_and_intersects(self, index):
        blocks = index.candidate_blocks(And([Term("fingerprint"), Term("image")]))
        assert sorted(blocks) == [2]

    def test_or_unions(self, index):
        blocks = index.candidate_blocks(Or([Term("banana"), Term("sensor")]))
        assert sorted(blocks) == [0, 3]

    def test_not_cannot_prune(self, index):
        blocks = index.candidate_blocks(Not(Term("fingerprint")))
        assert sorted(blocks) == sorted(index.block_sizes())

    def test_approx_cannot_prune(self, index):
        blocks = index.candidate_blocks(Approx("fingerprnt", 1))
        assert sorted(blocks) == sorted(index.block_sizes())

    def test_phrase_intersects_words(self, index):
        blocks = index.candidate_blocks(Phrase(["image", "processing"]))
        assert sorted(blocks) == [1]
        assert not index.candidate_blocks(Phrase(["image", "zzz"]))

    def test_matchall(self, index):
        assert sorted(index.candidate_blocks(MatchAll())) == \
            sorted(index.block_sizes())

    def test_dirref_rejected(self, index):
        with pytest.raises(TypeError):
            index.candidate_blocks(DirRef(1))

    def test_candidates_never_miss(self, index):
        # soundness: every doc containing the term is in a candidate block
        for term, holders in [("fingerprint", {0, 2, 4}), ("image", {1, 2})]:
            docs = set(index.docs_in_blocks(index.candidate_blocks(Term(term))))
            assert holders <= docs


class TestReporting:
    def test_docs_in_blocks(self, index):
        from repro.util.bitmap import Bitmap
        docs = index.docs_in_blocks(Bitmap([0]))
        assert sorted(docs) == [0, 4]

    def test_all_docs(self, index):
        assert sorted(index.all_docs()) == [0, 1, 2, 3, 4]

    def test_index_size_positive_and_shrinks(self, index):
        size = index.index_size_bytes()
        assert size > 0
        for doc in list(range(5)):
            index.remove(doc)
        assert index.index_size_bytes() < size

    def test_num_blocks_validation(self):
        with pytest.raises(ValueError):
            GlimpseIndex(num_blocks=0)
