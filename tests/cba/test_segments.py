"""Unit tests for the segmented index store: memtable, seal, compaction,
replica handoff, and zero-tokenisation restore."""

import pytest

from repro.cba.engine import CBAEngine
from repro.cba.queryparser import parse_query
from repro.cba.segments import (
    Segment,
    SegmentRow,
    SegmentStore,
    _coalesce,
)
from repro.cba.transducers import default_transducer
from repro.util.stats import Counters


def row(kind, doc_id, key, path="/f", mtime=1.0, terms=None, text=None):
    if kind == "upsert":
        return SegmentRow("upsert", doc_id, key, path, mtime,
                          len(text or ""), frozenset(terms or ()), text)
    return SegmentRow(kind, doc_id, key, path, mtime, 0)


class TestCoalesce:
    def test_upsert_replaces(self):
        a = row("upsert", 1, ("f", 1), terms={"x"})
        b = row("upsert", 1, ("f", 1), terms={"y"})
        assert _coalesce(a, b) is b

    def test_remove_replaces_upsert(self):
        a = row("upsert", 1, ("f", 1), terms={"x"})
        b = row("remove", 1, ("f", 1))
        assert _coalesce(a, b) is b

    def test_rename_folds_into_upsert(self):
        a = row("upsert", 1, ("f", 1), path="/old", terms={"x"}, text="x")
        b = row("rename", 1, ("f", 1), path="/new", mtime=2.0)
        merged = _coalesce(a, b)
        assert merged.kind == "upsert"
        assert merged.path == "/new"
        assert merged.mtime == 2.0
        assert merged.terms == frozenset({"x"})

    def test_rename_after_remove_keeps_tombstone(self):
        a = row("remove", 1, ("f", 1))
        b = row("rename", 1, ("f", 1), path="/new")
        assert _coalesce(a, b) is a

    def test_rename_with_no_prior_stands_alone(self):
        b = row("rename", 1, ("f", 1), path="/new")
        assert _coalesce(None, b) is b


class TestRowAndSegmentSerialization:
    def test_roundtrip_drops_text_keeps_terms(self):
        r = row("upsert", 3, ("fsid", 7), path="/a", mtime=2.5,
                terms={"b", "a"}, text="a b")
        revived = SegmentRow.from_obj(r.to_obj())
        assert revived.text is None          # never serialized
        assert revived.terms == frozenset({"a", "b"})
        assert revived.size == 3             # captured at note time
        assert (revived.kind, revived.doc_id, revived.key, revived.path,
                revived.mtime) == ("upsert", 3, ("fsid", 7), "/a", 2.5)

    def test_segment_roundtrip(self):
        seg = Segment("s000001", (row("upsert", 1, ("f", 1), terms={"t"}),
                                  row("remove", 2, ("f", 2))))
        revived = Segment.from_obj(seg.to_obj())
        assert revived.seg_id == "s000001"
        assert len(revived) == 2
        assert revived.rows[0].kind == "upsert"
        assert "s000001" in repr(seg)


class TestSegmentStore:
    def test_note_coalesces_per_key(self):
        counters = Counters()
        store = SegmentStore(counters=counters)
        store.note("index", 1, ("f", 1), "/a", 1.0, {"x"}, "x")
        store.note("update", 1, ("f", 1), "/a", 2.0, {"y"}, "y")
        assert len(store.memtable) == 1
        assert store.memtable[("f", 1)].terms == frozenset({"y"})
        assert counters.get("segments.noted") == 2

    def test_note_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            SegmentStore().note("mystery", 1, ("f", 1), "/a", 1.0)

    def test_seal_thresholds_and_ordering(self):
        store = SegmentStore(seal_threshold=2)
        assert store.seal() is None          # empty memtable: idempotent
        store.note("index", 5, ("f", 5), "/e", 1.0, {"e"}, "e")
        assert not store.should_seal
        store.note("index", 2, ("f", 2), "/b", 1.0, {"b"}, "b")
        assert store.should_seal
        seg = store.seal()
        assert [r.doc_id for r in seg.rows] == [2, 5]  # doc-id sorted
        assert store.memtable == {}
        assert store.frozen == [seg]
        assert store.sealed_log == [seg]

    def test_compact_folds_newest_wins_and_drops_tombstones(self):
        counters = Counters()
        store = SegmentStore(counters=counters, compact_threshold=1)
        store.note("index", 1, ("f", 1), "/a", 1.0, {"old"}, "old")
        store.note("index", 2, ("f", 2), "/b", 1.0, {"b"}, "b")
        store.seal()
        store.note("update", 1, ("f", 1), "/a", 2.0, {"new"}, "new")
        store.note("remove", 2, ("f", 2), "/b", 2.0)
        store.note("index", 3, ("f", 3), "/c", 2.0, {"c"}, "c")
        store.seal()
        assert store.should_compact
        merged, dropped = store.compact()
        assert dropped == ["s000000", "s000001"]
        assert store.frozen == [merged]
        by_key = {r.key: r for r in merged.rows}
        assert by_key[("f", 1)].terms == frozenset({"new"})
        assert ("f", 2) not in by_key        # tombstone dropped
        assert ("f", 3) in by_key
        assert counters.get("segments.compactions") == 1
        # one segment left: nothing further to merge
        assert store.compact() is None

    def test_live_rows_folds_rename_across_segments(self):
        store = SegmentStore()
        store.note("index", 1, ("f", 1), "/a", 1.0, {"x"}, "x")
        store.seal()
        store.note("rename", 1, ("f", 1), "/moved", 2.0)
        store.seal()
        live = store.live_rows()
        assert live[("f", 1)].path == "/moved"
        assert live[("f", 1)].terms == frozenset({"x"})

    def test_truncate_log_keeps_frozen(self):
        store = SegmentStore()
        store.note("index", 1, ("f", 1), "/a", 1.0, {"x"}, "x")
        store.seal()
        store.note("index", 2, ("f", 2), "/b", 1.0, {"y"}, "y")
        store.seal()
        store.truncate_log(1)
        assert len(store.sealed_log) == 1
        assert len(store.frozen) == 2        # compaction never touches it
        store.truncate_log(0)                # no-op
        assert len(store.sealed_log) == 1

    def test_manifest_roundtrip(self):
        store = SegmentStore()
        store.note("index", 1, ("f", 1), "/a", 1.0, {"x"}, "x")
        store.seal()
        manifest = store.to_manifest()
        assert manifest["segments"] == ["s000000"]
        revived = SegmentStore()
        revived.load_frozen(manifest,
                            [Segment.from_obj(s.to_obj())
                             for s in store.frozen])
        assert revived.live_rows().keys() == store.live_rows().keys()
        assert revived._next_seg == store._next_seg
        assert revived.persisted == {"s000000"}

    def test_seed_base_prepends(self):
        store = SegmentStore()
        store.note("remove", 1, ("f", 1), "/a", 2.0)
        store.seal()
        store.seed_base({("f", 1): row("upsert", 1, ("f", 1), terms={"x"}),
                         ("f", 2): row("upsert", 2, ("f", 2), terms={"y"})})
        # the base segment folds *under* the sealed tombstone
        live = store.live_rows()
        assert ("f", 1) not in live
        assert ("f", 2) in live
        store.seed_base({})                  # empty: no-op
        assert len(store.frozen) == 2
        assert "memtable" in repr(store)


def build_engine(segmented=True):
    texts = {}
    eng = CBAEngine(loader=texts.__getitem__,
                    transducer=default_transducer, segmented=segmented)
    return eng, texts


def search_paths(eng, query):
    hits = eng.search(parse_query(query))
    return sorted(eng.doc_by_id(d).path for d in hits)


class TestEngineIntegration:
    def test_replica_catches_up_from_segments(self):
        eng, texts = build_engine()
        texts[("f", 1)] = "alpha beta"
        eng.index_document(("f", 1), path="/one", mtime=1.0,
                           text=texts[("f", 1)])
        replica = eng.attach_replica("r0")
        texts[("f", 2)] = "alpha gamma"
        eng.index_document(("f", 2), path="/two", mtime=2.0,
                           text=texts[("f", 2)])
        eng.remove_document(("f", 1))
        eng.publish()
        assert search_paths(replica.engine, "alpha") == ["/two"]
        assert replica.engine.doc_id_of(("f", 2)) == \
            eng.doc_id_of(("f", 2))

    def test_replica_handles_tombstone_then_revival(self):
        eng, texts = build_engine()
        texts[("f", 1)] = "alpha"
        eng.index_document(("f", 1), path="/one", mtime=1.0,
                           text=texts[("f", 1)])
        replica = eng.attach_replica("r0")
        eng.remove_document(("f", 1))
        eng.publish()
        assert search_paths(replica.engine, "alpha") == []
        # the key returns with a fresh doc id — the replica must retire
        # the old incarnation and adopt the new one
        texts[("f", 1)] = "alpha reborn"
        eng.index_document(("f", 1), path="/one", mtime=3.0,
                           text=texts[("f", 1)])
        eng.publish()
        assert search_paths(replica.engine, "reborn") == ["/one"]
        assert replica.engine.doc_id_of(("f", 1)) == \
            eng.doc_id_of(("f", 1))

    def test_from_segments_restores_without_tokenising(self):
        eng, texts = build_engine()
        for i, words in enumerate(["alpha beta", "beta gamma", "alpha"]):
            texts[("f", i)] = words
            eng.index_document(("f", i), path=f"/{i}", mtime=1.0,
                               text=words)
        eng.remove_document(("f", 2))
        eng.segments.seal()
        counters = Counters()
        revived = CBAEngine.from_segments(
            eng.segments, loader=texts.__getitem__,
            next_doc_id=eng._next_doc_id, transducer=default_transducer,
            counters=counters)
        for q in ("alpha", "beta AND NOT gamma", "gamma"):
            assert search_paths(revived, q) == search_paths(eng, q), q
        assert counters.get("engine.tokenisations") == 0
        assert counters.get("engine.restored_docs") == 2
        assert revived._next_doc_id == eng._next_doc_id

    def test_doc_rows_mirror_live_state(self):
        eng, texts = build_engine()
        texts[("f", 1)] = "alpha beta"
        eng.index_document(("f", 1), path="/one", mtime=1.5,
                           text=texts[("f", 1)])
        rows = eng.doc_rows()
        assert set(rows) == {("f", 1)}
        r = rows[("f", 1)]
        assert r.kind == "upsert"
        assert r.path == "/one"
        # the transducer adds field terms (name:...) beyond the body words
        assert frozenset({"alpha", "beta"}) <= r.terms
        assert r.text is None                # synthesized, not re-read
