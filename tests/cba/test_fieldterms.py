"""Attribute/value query terms — the SFS model hosted in HAC's language."""

import pytest

from repro.cba.engine import CBAEngine
from repro.cba.queryast import And, FieldTerm, Not, Term, from_obj, has_field_terms
from repro.cba.queryparser import parse_query
from repro.cba.transducers import (
    combine,
    default_transducer,
    filename_transducer,
    header_transducer,
)

MAIL = {
    "m1": "From: alice\nSubject: fingerprint sensor\n\nthe body text\n",
    "m2": "From: bob\nSubject: lunch plans\n\nalice should come\n",
    "m3": "no headers here\nFrom: carol\n",
}


@pytest.fixture
def engine():
    eng = CBAEngine(loader=MAIL.__getitem__, transducer=default_transducer)
    for key in sorted(MAIL):
        eng.index_document(key, path=f"/mail/{key}.txt", mtime=0.0)
    return eng


def keys(engine, result):
    return sorted(engine.doc_by_id(d).key for d in result)


class TestTransducers:
    def test_header_pairs(self):
        pairs = header_transducer("/m", MAIL["m1"])
        assert ("from", "alice") in pairs
        assert ("subject", "fingerprint") in pairs
        assert ("subject", "sensor") in pairs

    def test_headers_stop_at_body(self):
        pairs = header_transducer("/m", MAIL["m3"])
        assert pairs == []  # first line is not a header

    def test_filename_pairs(self):
        pairs = filename_transducer("/mail/Report-v2.TXT", "")
        assert ("name", "report") in pairs
        assert ("name", "v2") in pairs
        assert ("ext", "txt") in pairs

    def test_combine(self):
        t = combine(header_transducer, filename_transducer)
        pairs = t("/m.txt", MAIL["m1"])
        assert ("from", "alice") in pairs and ("ext", "txt") in pairs


class TestAstAndParser:
    def test_parse_pair(self):
        assert parse_query("from:alice") == FieldTerm("from", "alice")

    def test_pair_in_boolean(self):
        got = parse_query("from:alice AND NOT subject:lunch")
        assert got == And([FieldTerm("from", "alice"),
                           Not(FieldTerm("subject", "lunch"))])

    def test_case_folded(self):
        assert FieldTerm("From", "Alice") == FieldTerm("from", "alice")

    def test_text_roundtrip(self):
        ast = parse_query("from:alice OR x")
        assert parse_query(ast.to_text()) == ast

    def test_obj_roundtrip(self):
        node = FieldTerm("a", "b")
        assert from_obj(node.to_obj()) == node

    def test_index_term_is_colon_joined(self):
        assert list(FieldTerm("from", "alice").terms()) == ["from:alice"]

    def test_has_field_terms(self):
        assert has_field_terms(parse_query("x AND from:alice"))
        assert not has_field_terms(parse_query("x AND y"))
        assert has_field_terms(Not(FieldTerm("a", "b")))


class TestSearch:
    def test_field_search_exact(self, engine):
        assert keys(engine, engine.search(parse_query("from:alice"))) == ["m1"]

    def test_word_vs_field_distinction(self, engine):
        # "alice" as a word matches both; as from:alice only the sender
        assert keys(engine, engine.search(parse_query("alice"))) == ["m1", "m2"]
        assert keys(engine, engine.search(parse_query("from:alice"))) == ["m1"]

    def test_multiword_header_value(self, engine):
        assert keys(engine, engine.search(parse_query("subject:sensor"))) == ["m1"]

    def test_combined_with_content(self, engine):
        got = engine.search(parse_query("from:bob AND alice"))
        assert keys(engine, got) == ["m2"]

    def test_unknown_field_empty(self, engine):
        assert not engine.search(parse_query("priority:high"))

    def test_naive_equivalence(self, engine):
        for q in ("from:alice", "ext:txt", "from:bob OR subject:sensor",
                  "NOT from:carol"):
            ast = parse_query(q)
            assert engine.search(ast) == engine.naive_search(ast), q

    def test_engine_without_transducer_ignores_fields(self):
        eng = CBAEngine(loader=MAIL.__getitem__)  # no transducer
        for key in sorted(MAIL):
            eng.index_document(key, path=f"/{key}", mtime=0.0)
        assert not eng.search(parse_query("from:alice"))

    def test_rename_refreshes_name_terms(self, engine):
        assert keys(engine, engine.search(parse_query("name:m1"))) == ["m1"]
        engine.reindex([("m1", "/mail/renamed.txt", 0.0),
                        ("m2", "/mail/m2.txt", 0.0),
                        ("m3", "/mail/m3.txt", 0.0)])
        assert not engine.search(parse_query("name:m1"))
        assert keys(engine, engine.search(parse_query("name:renamed"))) == ["m1"]


class TestThroughHac:
    def test_semantic_dir_on_field_query(self, populated):
        populated.smkdir("/by-sender", "from:alice")
        assert sorted(populated.links("/by-sender")) == ["msg1.txt"]

    def test_sact_on_field_query(self, populated):
        populated.smkdir("/by-sender", "from:alice")
        lines = populated.sact("/by-sender/msg1.txt")
        assert lines == ["From: alice"]

    def test_field_query_survives_restore(self, populated):
        populated.smkdir("/by-sender", "from:alice")
        from repro.core.hacfs import HacFileSystem
        revived = HacFileSystem.restore(populated.fs)
        assert sorted(revived.links("/by-sender")) == ["msg1.txt"]
