"""The SearchBackend protocol: one formal contract, three back-ends."""

import pytest

from repro.cba.backend import SearchBackend
from repro.cba.engine import CBAEngine
from repro.cluster import ShardedSearchCluster
from repro.remote.searchsvc import SimulatedSearchService

CORPUS = {
    "fp-survey": "a survey of fingerprint recognition techniques",
    "nn-paper": "neural networks and their discontents",
}


def _loader(_key):
    return ""


@pytest.fixture(params=["engine", "cluster", "service"])
def backend(request):
    if request.param == "engine":
        return CBAEngine(loader=_loader)
    if request.param == "cluster":
        return ShardedSearchCluster(_loader, ["s0", "s1"], latency=0.0)
    return SimulatedSearchService("svc", documents=CORPUS)


def test_every_backend_satisfies_the_protocol(backend):
    # runtime_checkable verifies method presence; the equivalence suites
    # verify behaviour — together they replace the old hasattr sniffing
    assert isinstance(backend, SearchBackend)


def test_protocol_is_not_vacuous():
    assert not isinstance(object(), SearchBackend)
    assert not isinstance({}, SearchBackend)


def test_degradation_surface_defaults(backend):
    """Non-sharded back-ends answer the degradation queries with explicit
    empty values, so callers need no hasattr fallback."""
    if isinstance(backend, ShardedSearchCluster):
        assert set(backend.health()) == {"s0", "s1"}
        assert backend.shard_of(("fs#1", 2)) in {"s0", "s1"}
    else:
        assert backend.health() == {}
        assert backend.shard_of("anything") is None
        assert backend.reset_missing_shards() == set()


def test_doc_id_reservation_is_monotonic(backend):
    a = backend.reserve_doc_id()
    b = backend.reserve_doc_id()
    assert b == a + 1


def test_reserved_id_is_honoured_and_never_reissued():
    engine = CBAEngine(loader=_loader)
    reserved = engine.reserve_doc_id()
    got = engine.index_document("k1", "/k1", 1.0, text="alpha",
                                doc_id=reserved)
    assert got == reserved
    assert engine.index_document("k2", "/k2", 1.0, text="beta") > reserved


def test_cluster_rejects_duplicate_pinned_id():
    cluster = ShardedSearchCluster(_loader, ["s0", "s1"], latency=0.0)
    doc_id = cluster.index_document("k1", "/k1", 1.0, text="alpha")
    with pytest.raises(ValueError):
        cluster.index_document("k2", "/k2", 1.0, text="beta", doc_id=doc_id)


def test_cluster_search_blocks_matches_monolith():
    """The phase-2-only entry point verifies caller-nominated blocks with
    answers bit-identical to the monolithic engine's."""
    from repro.cba.queryparser import parse_query

    corpus = {f"doc{i}": ("fingerprint ridge" if i % 3 == 0 else "banana")
              for i in range(12)}
    mono = CBAEngine(loader=corpus.get)
    cluster = ShardedSearchCluster(corpus.get, ["s0", "s1", "s2"],
                                   latency=0.0)
    for i, (key, text) in enumerate(sorted(corpus.items())):
        mono.index_document(key, f"/{key}", float(i), text=text)
        cluster.index_document(key, f"/{key}", float(i), text=text)
    query = parse_query("fingerprint")
    blocks = mono.index.occupied_blocks()
    assert cluster.search_blocks(query, blocks).to_bytes() == \
        mono.search_blocks(query, blocks).to_bytes()


def test_serving_surface_is_uniform(backend):
    """Every back-end publishes versions and serves snapshot views with
    the same shape — the serving tier never special-cases a back-end."""
    info = backend.snapshot_info()
    assert set(info) >= {"version", "pending_ops", "replicas"}
    assert backend.publish() == info["version"] + 1
    view = backend.snapshot_view()
    assert view.all_docs().to_bytes() == backend.all_docs().to_bytes()
    after = backend.snapshot_info()
    assert after["replicas"], "snapshot_view must attach a replica"
    assert all(r["version"] == after["version"] for r in after["replicas"])


def test_service_snapshot_tracks_publishes():
    service = SimulatedSearchService("svc", documents=CORPUS)
    view = service.snapshot_view()
    before = view.all_docs().to_bytes()
    service.add_document("late", "late breaking fingerprint news")
    assert service.snapshot_view().all_docs().to_bytes() == before
    service.publish()
    assert service.snapshot_view().all_docs().to_bytes() == \
        service.all_docs().to_bytes()


def test_service_roundtrips_through_to_obj():
    service = SimulatedSearchService("svc", documents=CORPUS,
                                     titles={"fp-survey": "The Survey"})
    service.add_document("late", "late breaking fingerprint news")
    restored = SimulatedSearchService.from_obj(service.to_obj(),
                                               namespace_id="svc")
    assert sorted(restored.search("fingerprint")) == \
        sorted(service.search("fingerprint"))
    assert restored.title_of("fp-survey") == "The Survey"
    assert restored.fetch("late") == "late breaking fingerprint news"
    assert restored.mtime_snapshot() == service.mtime_snapshot()
    assert restored._engine._next_doc_id == service._engine._next_doc_id


# ---------------------------------------------------------------------------
# open_backend: the unified construction surface
# ---------------------------------------------------------------------------


class TestOpenBackend:
    def test_none_and_monolith_specs_build_an_engine(self):
        from repro.cba.backend import MonolithFactory, open_backend

        for spec in (None, "monolith", {"kind": "monolith"}):
            factory = open_backend(spec)
            assert isinstance(factory, MonolithFactory)
            engine = factory(_loader)
            assert isinstance(engine, CBAEngine)

    def test_cluster_spec_parses_shard_count(self):
        from repro.cba.backend import open_backend
        from repro.cluster import ClusterFactory

        factory = open_backend("cluster:4")
        assert isinstance(factory, ClusterFactory)
        cluster = factory(_loader)
        assert len(cluster.shards) == 4

    def test_cluster_dict_spec_passes_options(self):
        from repro.cba.backend import open_backend

        factory = open_backend({"kind": "cluster", "shards": 2,
                                "latency": 0.0})
        assert len(factory(_loader).shards) == 2

    def test_remote_spec_builds_a_service(self):
        from repro.cba.backend import open_backend

        service = open_backend("remote:digilib")
        assert isinstance(service, SimulatedSearchService)
        assert service.namespace_id == "digilib"

    def test_remote_spec_requires_a_namespace(self):
        from repro.cba.backend import open_backend

        with pytest.raises(ValueError):
            open_backend("remote")

    def test_unknown_kind_is_rejected(self):
        from repro.cba.backend import open_backend

        with pytest.raises(ValueError):
            open_backend("warehouse")

    def test_backend_objects_pass_through(self):
        from repro.cba.backend import open_backend

        service = SimulatedSearchService("svc", documents=CORPUS)
        assert open_backend(service) is service

    def test_engine_factory_kwarg_is_a_deprecated_shim(self):
        from repro.core.hacfs import HacFileSystem
        from repro.cluster import ClusterFactory

        with pytest.warns(DeprecationWarning, match="engine_factory"):
            hac = HacFileSystem(engine_factory=ClusterFactory(
                shards=2, latency=0.0))
        assert len(hac.engine.shards) == 2

    def test_backend_kwarg_is_the_replacement(self):
        import warnings

        from repro.core.hacfs import HacFileSystem

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            hac = HacFileSystem(backend="cluster:2")
        assert len(hac.engine.shards) == 2

    def test_restore_accepts_a_backend_spec(self):
        from repro.core.hacfs import HacFileSystem

        hac = HacFileSystem(backend="cluster:2")
        hac.makedirs("/notes")
        hac.write_file("/notes/a.txt", b"fingerprint ridges")
        hac.ssync("/")
        hac.save_index()
        again = HacFileSystem.restore(hac.fs, backend="cluster:2")
        assert len(again.engine.shards) == 2
        assert len(again.engine) == 1  # the saved index came back
