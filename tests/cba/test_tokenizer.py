"""Unit tests for word extraction."""

import pytest

from repro.cba.tokenizer import (
    DEFAULT_STOPWORDS,
    index_terms,
    iter_tokens,
    normalize_word,
    tokenize,
    tokenize_lines,
)


class TestTokenize:
    def test_basic(self):
        assert tokenize("Hello, World!") == ["hello", "world"]

    def test_underscores_and_digits(self):
        assert tokenize("fn_1 v2x") == ["fn_1", "v2x"]

    def test_punctuation_splits(self):
        assert tokenize("a-b.c/d") == ["a", "b", "c", "d"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("!!! ...") == []

    def test_iter_matches_list(self):
        text = "The quick brown fox"
        assert list(iter_tokens(text)) == tokenize(text)


class TestIndexTerms:
    def test_drops_stopwords_and_short(self):
        terms = index_terms("The fingerprint of a cat is x")
        assert "fingerprint" in terms and "cat" in terms
        assert "the" not in terms and "x" not in terms and "of" not in terms

    def test_distinct(self):
        assert index_terms("dog dog dog") == {"dog"}

    def test_custom_stopwords(self):
        terms = index_terms("alpha beta", stopwords={"alpha"})
        assert terms == {"beta"}

    def test_min_length(self):
        assert index_terms("ab abc", min_length=3) == {"abc"}

    def test_default_stopwords_are_lowercase(self):
        assert all(w == w.lower() for w in DEFAULT_STOPWORDS)


class TestHelpers:
    def test_tokenize_lines(self):
        assert tokenize_lines("a b\nc") == [["a", "b"], ["c"]]

    def test_normalize_word(self):
        assert normalize_word("Fingerprint") == "fingerprint"

    def test_normalize_word_rejects_multiword(self):
        with pytest.raises(ValueError):
            normalize_word("two words")
        with pytest.raises(ValueError):
            normalize_word("")
