"""Unit tests for the per-document scanner (agrep)."""

import pytest

from repro.cba.queryast import And, Approx, DirRef, MatchAll, Not, Or, Phrase, Term
from repro.cba.agrep import matches, matching_lines, within_distance

DOC = """subject: fingerprint sensors
the new fingerprint sensor works well
image processing is unrelated here
goodbye
"""


class TestWithinDistance:
    def test_equal(self):
        assert within_distance("abc", "abc", 1)

    def test_substitution(self):
        assert within_distance("abc", "abd", 1)
        assert not within_distance("abc", "abd", 0)

    def test_insert_delete(self):
        assert within_distance("abc", "abxc", 1)
        assert within_distance("abc", "ab", 1)

    def test_transposition_costs_two(self):
        assert not within_distance("finger", "fingre", 1)
        assert within_distance("finger", "fingre", 2)

    def test_length_gap_pruning(self):
        assert not within_distance("a", "abcdef", 2)

    def test_empty_strings(self):
        assert within_distance("", "", 1)
        assert within_distance("", "a", 1)
        assert not within_distance("", "ab", 1)

    @pytest.mark.parametrize("a,b,k", [
        ("kitten", "sitting", 3),
        ("flaw", "lawn", 2),
        ("glimpse", "glimse", 1),
    ])
    def test_known_distances(self, a, b, k):
        assert within_distance(a, b, k)
        assert not within_distance(a, b, k - 1)


class TestMatches:
    def test_term(self):
        assert matches(DOC, Term("fingerprint"))
        assert not matches(DOC, Term("murder"))

    def test_term_word_boundary(self):
        # "finger" is not a token of DOC even though it is a substring
        assert not matches(DOC, Term("finger"))

    def test_phrase(self):
        assert matches(DOC, Phrase(["image", "processing"]))
        assert not matches(DOC, Phrase(["processing", "image"]))
        assert not matches(DOC, Phrase(["fingerprint", "processing"]))

    def test_phrase_across_lines(self):
        # tokens are a flat stream, so line breaks behave like spaces
        assert matches("alpha\nbeta", Phrase(["alpha", "beta"]))

    def test_approx(self):
        assert matches(DOC, Approx("fingerprnt", 1))
        assert not matches(DOC, Approx("murder", 2))

    def test_booleans(self):
        assert matches(DOC, And([Term("fingerprint"), Term("image")]))
        assert not matches(DOC, And([Term("fingerprint"), Term("murder")]))
        assert matches(DOC, Or([Term("murder"), Term("goodbye")]))
        assert matches(DOC, Not(Term("murder")))
        assert not matches(DOC, Not(Term("fingerprint")))

    def test_matchall(self):
        assert matches("", MatchAll())

    def test_dirref_rejected(self):
        with pytest.raises(TypeError):
            matches(DOC, DirRef(1))
        with pytest.raises(TypeError):
            # the first conjunct matches, so evaluation reaches the DirRef
            matches(DOC, And([Term("fingerprint"), DirRef(1)]))


class TestMatchingLines:
    def test_positive_leaf_lines(self):
        lines = matching_lines(DOC, Term("fingerprint"))
        assert lines == ["subject: fingerprint sensors",
                         "the new fingerprint sensor works well"]

    def test_or_collects_both(self):
        lines = matching_lines(DOC, Or([Term("goodbye"), Term("image")]))
        assert lines == ["image processing is unrelated here", "goodbye"]

    def test_negative_only_query_returns_all(self):
        lines = matching_lines("a\nb", Not(Term("x")))
        assert lines == ["a", "b"]

    def test_phrase_lines(self):
        lines = matching_lines(DOC, Phrase(["image", "processing"]))
        assert lines == ["image processing is unrelated here"]

    def test_leaves_under_not_excluded(self):
        # NOT murder contributes no positive leaf; fingerprint does
        lines = matching_lines(DOC, And([Term("fingerprint"),
                                         Not(Term("image"))]))
        assert "image processing is unrelated here" not in lines
