"""Unit tests for reindex planning."""

import pytest

from repro.cba.incremental import merge_plans, plan_reindex


class TestPlan:
    def test_noop(self):
        plan = plan_reindex({"a": 1.0}, {"a": 1.0})
        assert plan.is_noop
        assert plan.unchanged == 1
        assert plan.touched == 0

    def test_added(self):
        plan = plan_reindex({}, {"a": 1.0})
        assert plan.added == ["a"] and not plan.removed and not plan.changed

    def test_removed(self):
        plan = plan_reindex({"a": 1.0}, {})
        assert plan.removed == ["a"]

    def test_changed_on_mtime_difference(self):
        plan = plan_reindex({"a": 1.0}, {"a": 2.0})
        assert plan.changed == ["a"]

    def test_mixed(self):
        plan = plan_reindex({"a": 1.0, "b": 1.0, "c": 1.0},
                            {"b": 2.0, "c": 1.0, "d": 1.0})
        assert plan.added == ["d"]
        assert plan.removed == ["a"]
        assert plan.changed == ["b"]
        assert plan.unchanged == 1
        assert plan.touched == 3

    def test_repr(self):
        plan = plan_reindex({"a": 1.0}, {"a": 2.0, "b": 1.0})
        assert repr(plan) == "ReindexPlan(+1 -0 ~1 =0)"


class TestMerge:
    def test_merge_disjoint(self):
        p1 = plan_reindex({"a": 1.0}, {"a": 2.0})
        p2 = plan_reindex({}, {"b": 1.0})
        merged = merge_plans(p1, p2)
        assert merged.changed == ["a"] and merged.added == ["b"]

    def test_merge_overlap_rejected(self):
        p1 = plan_reindex({}, {"a": 1.0})
        p2 = plan_reindex({"a": 1.0}, {})
        with pytest.raises(ValueError):
            merge_plans(p1, p2)
