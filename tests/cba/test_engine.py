"""Unit tests for the CBA engine facade."""

import pytest

from repro.cba.engine import CBAEngine
from repro.cba.queryast import MatchAll, Not, Term
from repro.cba.queryparser import parse_query
from repro.util.bitmap import Bitmap

CORPUS = {
    "a": "the fingerprint matching system for the fbi",
    "b": "image processing of fingerprint images",
    "c": "banana bread recipe",
    "d": "notes on the murder case with fingerprint evidence",
}


def build_engine(**kwargs):
    store = dict(CORPUS)
    eng = CBAEngine(loader=lambda k: store.get(k, ""), **kwargs)
    eng.store = store  # test hook
    for i, (key, text) in enumerate(sorted(store.items())):
        eng.index_document(key, path=f"/{key}.txt", mtime=1.0)
    return eng


@pytest.fixture
def engine():
    return build_engine()


def keys_of(engine, bitmap):
    return sorted(engine.doc_by_id(d).key for d in bitmap)


class TestRegistry:
    def test_lookups(self, engine):
        doc = engine.doc_by_key("a")
        assert doc.path == "/a.txt"
        assert engine.doc_by_id(doc.doc_id).key == "a"
        assert engine.doc_id_of("zzz") is None
        assert "a" in engine and "zzz" not in engine
        assert len(engine) == 4

    def test_duplicate_index_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.index_document("a", path="/x", mtime=2.0)

    def test_remove(self, engine):
        engine.remove_document("c")
        assert "c" not in engine
        assert not engine.search(Term("banana"))
        with pytest.raises(KeyError):
            engine.remove_document("c")

    def test_update(self, engine):
        engine.store["c"] = "now about fingerprint too"
        engine.update_document("c", path="/c.txt", mtime=2.0)
        assert "c" in keys_of(engine, engine.search(Term("fingerprint")))
        assert not engine.search(Term("banana"))

    def test_update_unknown_rejected(self, engine):
        with pytest.raises(KeyError):
            engine.update_document("zzz", path="/x", mtime=0.0)

    def test_rename_document(self, engine):
        engine.rename_document("a", "/moved.txt")
        assert engine.doc_by_key("a").path == "/moved.txt"
        with pytest.raises(KeyError):
            engine.rename_document("zzz", "/x")

    def test_mtime_snapshot(self, engine):
        snap = engine.mtime_snapshot()
        assert snap == {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0}


class TestSearch:
    def test_term(self, engine):
        assert keys_of(engine, engine.search(Term("fingerprint"))) == ["a", "b", "d"]

    def test_boolean(self, engine):
        ast = parse_query("fingerprint AND NOT murder")
        assert keys_of(engine, engine.search(ast)) == ["a", "b"]

    def test_scope_restricts(self, engine):
        scope = Bitmap([engine.doc_id_of("a"), engine.doc_id_of("c")])
        assert keys_of(engine, engine.search(Term("fingerprint"), scope)) == ["a"]

    def test_matchall_no_scanning(self, engine):
        before = engine.counters.get("engine.docs_scanned")
        result = engine.search(MatchAll())
        assert len(result) == 4
        assert engine.counters.get("engine.docs_scanned") == before

    def test_pure_not_scans_scope(self, engine):
        result = engine.search(Not(Term("fingerprint")))
        assert keys_of(engine, result) == ["c"]

    def test_naive_equals_indexed(self, engine):
        for text in ("fingerprint", "fingerprint AND NOT murder",
                     '"banana bread"', "fbi OR murder", "evidnce~1"):
            ast = parse_query(text)
            assert engine.search(ast) == engine.naive_search(ast), text

    def test_index_narrows_scanning(self, engine):
        engine.counters.reset()
        engine.search(Term("banana"))
        scanned = engine.counters.get("engine.docs_scanned")
        assert scanned <= 1  # only block holding "c" gets scanned

    def test_stale_loader_content_is_consistent_with_scan(self):
        # scan-path semantics (fast path off): content changed but not
        # reindexed — the index still nominates the doc, the scan sees the
        # new text — data inconsistency, §2.4 style
        engine = build_engine(fast_path=False)
        engine.store["d"] = "totally different now"
        assert keys_of(engine, engine.search(Term("fingerprint"))) == ["a", "b"]

    def test_stale_loader_content_fast_path_answers_from_index(self, engine):
        # fast-path semantics: term queries are answered from the index
        # state, so unindexed content changes stay invisible until the next
        # reindex — the other consistent reading of the §2.4 lazy policy
        engine.store["d"] = "totally different now"
        assert keys_of(engine, engine.search(Term("fingerprint"))) == ["a", "b", "d"]
        engine.update_document("d", path="/d.txt", mtime=2.0)
        assert keys_of(engine, engine.search(Term("fingerprint"))) == ["a", "b"]

    def test_extract(self, engine):
        lines = engine.extract("d", Term("murder"))
        assert lines == ["notes on the murder case with fingerprint evidence"]


class TestReindex:
    def test_noop_plan(self, engine):
        plan = engine.reindex((k, f"/{k}.txt", 1.0) for k in CORPUS)
        assert plan.is_noop
        assert plan.unchanged == 4

    def test_add_remove_change(self, engine):
        engine.store["e"] = "new fingerprint file"
        engine.store["a"] = "changed away"
        current = [("a", "/a.txt", 2.0), ("b", "/b.txt", 1.0),
                   ("d", "/d.txt", 1.0), ("e", "/e.txt", 2.0)]
        plan = engine.reindex(current)
        assert plan.added == ["e"] and plan.removed == ["c"]
        assert plan.changed == ["a"]
        assert keys_of(engine, engine.search(Term("fingerprint"))) == ["b", "d", "e"]

    def test_restricted_previous_keeps_outside_docs(self, engine):
        # reindex "only the subtree containing b": a/c/d must survive
        plan = engine.reindex([("b", "/b.txt", 1.0)], previous={"b": 1.0})
        assert plan.is_noop
        assert len(engine) == 4

    def test_path_refresh_without_mtime_change(self, engine):
        engine.reindex([("a", "/renamed.txt", 1.0), ("b", "/b.txt", 1.0),
                        ("c", "/c.txt", 1.0), ("d", "/d.txt", 1.0)])
        assert engine.doc_by_key("a").path == "/renamed.txt"


class TestReporting:
    def test_sizes(self, engine):
        assert engine.index_size_bytes() > 0
        assert engine.corpus_bytes() == sum(len(t) for t in CORPUS.values())
