"""Unit tests for the query-language parser."""

import pytest

from repro.errors import QuerySyntaxError, UnknownDirectoryReference
from repro.cba.queryast import (
    And,
    Approx,
    DirRef,
    MatchAll,
    Not,
    Or,
    Phrase,
    Term,
)
from repro.cba.queryparser import parse_query

DIRS = {"/a": 1, "/a/b": 2, "/x": 3}


def resolve(path):
    return DIRS.get(path)


class TestBasics:
    def test_single_term(self):
        assert parse_query("fingerprint") == Term("fingerprint")

    def test_empty_is_matchall(self):
        assert parse_query("") == MatchAll()
        assert parse_query("   ") == MatchAll()
        assert parse_query("*") == MatchAll()

    def test_keywords_case_insensitive(self):
        assert parse_query("a AND b") == parse_query("a and b")
        assert parse_query("NOT x") == parse_query("not x")

    def test_juxtaposition_is_and(self):
        assert parse_query("a b c") == And([Term("a"), Term("b"), Term("c")])
        assert parse_query("a b") == parse_query("a AND b")

    def test_phrase(self):
        assert parse_query('"image processing"') == Phrase(["image", "processing"])

    def test_single_word_phrase_is_term(self):
        assert parse_query('"solo"') == Term("solo")

    def test_approx(self):
        assert parse_query("glimse~2") == Approx("glimse", 2)

    def test_dir_reference(self):
        assert parse_query("/a/b", resolve_dir=resolve) == DirRef(2)
        assert parse_query("/a/b/", resolve_dir=resolve) == DirRef(2)


class TestPrecedence:
    def test_not_binds_tightest(self):
        assert parse_query("NOT a AND b") == And([Not(Term("a")), Term("b")])
        assert parse_query("NOT NOT a") == Not(Not(Term("a")))

    def test_and_binds_tighter_than_or(self):
        got = parse_query("a AND b OR c")
        assert got == Or([And([Term("a"), Term("b")]), Term("c")])

    def test_parens_override(self):
        got = parse_query("a AND (b OR c)")
        assert got == And([Term("a"), Or([Term("b"), Term("c")])])

    def test_paper_example(self):
        got = parse_query("fingerprint AND NOT murder")
        assert got == And([Term("fingerprint"), Not(Term("murder"))])

    def test_mixed_with_refs(self):
        got = parse_query("fingerprint AND /a", resolve_dir=resolve)
        assert got == And([Term("fingerprint"), DirRef(1)])


class TestErrors:
    def test_unbalanced_paren(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("(a OR b")

    def test_stray_rparen(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("a)")

    def test_dangling_operator(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("a AND")
        with pytest.raises(QuerySyntaxError):
            parse_query("OR a")

    def test_empty_phrase(self):
        with pytest.raises(QuerySyntaxError):
            parse_query('""')

    def test_bad_character(self):
        with pytest.raises(QuerySyntaxError) as exc:
            parse_query("a & b")
        assert exc.value.position == 2

    def test_unknown_directory(self):
        with pytest.raises(UnknownDirectoryReference):
            parse_query("/nope", resolve_dir=resolve)

    def test_refs_forbidden_without_resolver(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("/a")

    def test_lone_not(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("NOT")


class TestRoundtrip:
    @pytest.mark.parametrize("text", [
        "a",
        "a AND b",
        "a OR b OR c",
        "NOT a",
        'a AND "b c" AND NOT d',
        "(a OR b) AND c",
        "x~1 OR y",
    ])
    def test_to_text_reparses_same(self, text):
        ast = parse_query(text)
        assert parse_query(ast.to_text()) == ast

    def test_ref_roundtrip_through_map(self):
        ast = parse_query("x AND /a/b", resolve_dir=resolve)
        rendered = ast.to_text(lambda uid: {v: k for k, v in DIRS.items()}[uid])
        assert rendered == "x AND /a/b"
        assert parse_query(rendered, resolve_dir=resolve) == ast
