"""Unit tests for query AST nodes."""

import pytest

from repro.cba.queryast import (
    And,
    Approx,
    DirRef,
    MatchAll,
    Not,
    Or,
    Phrase,
    Term,
    conjoin,
    content_projection,
    from_obj,
    rewrite_dir_refs,
)


class TestNodes:
    def test_term_lowercases(self):
        assert Term("FooBar").word == "foobar"

    def test_immutability(self):
        t = Term("x")
        with pytest.raises(AttributeError):
            t.word = "y"
        with pytest.raises(AttributeError):
            And([t, Term("y")]).children = ()

    def test_equality_and_hash(self):
        assert Term("a") == Term("A")
        assert hash(Term("a")) == hash(Term("A"))
        assert Term("a") != Term("b")
        assert And([Term("a"), Term("b")]) == And([Term("a"), Term("b")])
        assert Not(Term("a")) != Term("a")

    def test_compound_needs_two(self):
        with pytest.raises(ValueError):
            And([Term("a")])
        with pytest.raises(ValueError):
            Or([])

    def test_compound_flattens_same_type(self):
        node = And([And([Term("a"), Term("b")]), Term("c")])
        assert len(node.children) == 3
        # different compound types do not flatten into each other
        node2 = Or([And([Term("a"), Term("b")]), Term("c")])
        assert len(node2.children) == 2

    def test_phrase_validation(self):
        with pytest.raises(ValueError):
            Phrase([])
        assert Phrase(["A", "b"]).words == ("a", "b")

    def test_approx_validation(self):
        with pytest.raises(ValueError):
            Approx("x", 0)
        assert Approx("X", 2).k == 2

    def test_terms_iteration(self):
        node = And([Term("a"), Or([Phrase(["b", "c"]), Not(Term("d"))])])
        assert sorted(node.terms()) == ["a", "b", "c", "d"]

    def test_approx_exposes_no_index_terms(self):
        assert list(Approx("word", 1).terms()) == []

    def test_dir_refs_iteration(self):
        node = And([DirRef(3), Not(DirRef(7)), Term("x")])
        assert sorted(node.dir_refs()) == [3, 7]


class TestText:
    def test_to_text(self):
        node = And([Term("a"), Or([Term("b"), Term("c")]), Not(Term("d"))])
        assert node.to_text() == "a AND (b OR c) AND NOT d"

    def test_phrase_and_approx_text(self):
        assert Phrase(["x", "y"]).to_text() == '"x y"'
        assert Approx("x", 2).to_text() == "x~2"
        assert MatchAll().to_text() == "*"

    def test_dirref_text_through_map(self):
        node = DirRef(5)
        assert node.to_text(lambda uid: "/some/dir") == "/some/dir"
        assert node.to_text() == "<dir:5>"
        assert node.to_text(lambda uid: None) == "<dir:5>"


class TestSerialization:
    @pytest.mark.parametrize("node", [
        MatchAll(),
        Term("x"),
        Approx("y", 2),
        Phrase(["a", "b"]),
        DirRef(9),
        And([Term("a"), Not(Term("b"))]),
        Or([Phrase(["p", "q"]), And([DirRef(1), Term("z")])]),
    ])
    def test_roundtrip(self, node):
        assert from_obj(node.to_obj()) == node

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            from_obj({"op": "wat"})


class TestHelpers:
    def test_conjoin(self):
        a, b = Term("a"), Term("b")
        assert conjoin(a, b) == And([a, b])
        assert conjoin(None, b) == b
        assert conjoin(a, None) == a
        assert conjoin(None, None) == MatchAll()
        assert conjoin(MatchAll(), b) == b

    def test_rewrite_dir_refs(self):
        node = And([DirRef(1), Or([DirRef(2), Term("x")]), Not(DirRef(1))])
        out = rewrite_dir_refs(node, {1: 10, 2: 20})
        assert sorted(out.dir_refs()) == [10, 10, 20]
        # terms untouched
        assert "x" in list(out.terms())

    def test_content_projection_drops_refs(self):
        node = And([Term("a"), DirRef(1)])
        assert content_projection(node) == Term("a")

    def test_content_projection_all_refs(self):
        assert content_projection(And([DirRef(1), DirRef(2)])) == MatchAll()

    def test_content_projection_or_with_ref(self):
        # an OR branch that is a pure reference widens to MatchAll remotely
        assert content_projection(Or([Term("a"), DirRef(1)])) == MatchAll()

    def test_content_projection_not_ref(self):
        assert content_projection(Not(DirRef(1))) == MatchAll()
        assert content_projection(Not(Term("a"))) == Not(Term("a"))
