"""Unit tests for mixed local/remote result sets."""

import pytest

from repro.cba.results import RemoteId, ResultSet
from repro.util.bitmap import Bitmap


class TestRemoteId:
    def test_uri_roundtrip(self):
        rid = RemoteId("digilib", "paper1")
        assert rid.uri() == "digilib://paper1"
        assert RemoteId.from_uri("digilib://paper1") == rid

    def test_from_uri_rejects_plain(self):
        with pytest.raises(ValueError):
            RemoteId.from_uri("/not/a/uri")


class TestResultSet:
    def test_empty(self):
        rs = ResultSet.empty()
        assert len(rs) == 0 and not rs

    def test_len_and_contains(self):
        rs = ResultSet(Bitmap([1, 2]), {RemoteId("n", "d")})
        assert len(rs) == 3
        assert 1 in rs and 3 not in rs
        assert RemoteId("n", "d") in rs
        assert RemoteId("n", "x") not in rs

    def test_algebra(self):
        a = ResultSet(Bitmap([1, 2]), {RemoteId("n", "x"), RemoteId("n", "y")})
        b = ResultSet(Bitmap([2, 3]), {RemoteId("n", "y")})
        assert (a | b) == ResultSet(Bitmap([1, 2, 3]),
                                    {RemoteId("n", "x"), RemoteId("n", "y")})
        assert (a & b) == ResultSet(Bitmap([2]), {RemoteId("n", "y")})
        assert (a - b) == ResultSet(Bitmap([1]), {RemoteId("n", "x")})

    def test_issubset(self):
        small = ResultSet(Bitmap([1]), {RemoteId("n", "x")})
        big = ResultSet(Bitmap([1, 2]), {RemoteId("n", "x"), RemoteId("n", "y")})
        assert small.issubset(big)
        assert not big.issubset(small)

    def test_copy_independent(self):
        rs = ResultSet(Bitmap([1]), {RemoteId("n", "x")})
        dup = rs.copy()
        dup.local.add(2)
        dup.remote.clear()
        assert 2 not in rs.local and rs.remote

    def test_hash_consistent_with_eq(self):
        a = ResultSet(Bitmap([1]), {RemoteId("n", "x")})
        b = ResultSet(Bitmap([1]), {RemoteId("n", "x")})
        assert a == b and hash(a) == hash(b)
