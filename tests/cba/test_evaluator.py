"""Unit tests for full-query evaluation (content + directory references)."""

import pytest

from repro.cba.engine import CBAEngine
from repro.cba.evaluator import evaluate, is_content_only
from repro.cba.queryast import And, DirRef, MatchAll, Not, Or, Term
from repro.util.bitmap import Bitmap

CORPUS = {
    1: "alpha beta",
    2: "alpha gamma",
    3: "beta gamma",
    4: "delta",
}


@pytest.fixture
def engine():
    eng = CBAEngine(loader=lambda k: CORPUS.get(k, ""))
    for key in sorted(CORPUS):
        eng.index_document(key, path=f"/{key}", mtime=0.0)
    return eng


def ids(engine, *keys):
    return Bitmap([engine.doc_id_of(k) for k in keys])


class TestContentOnly:
    def test_detection(self):
        assert is_content_only(And([Term("a"), Not(Term("b"))]))
        assert not is_content_only(And([Term("a"), DirRef(1)]))
        assert not is_content_only(Not(DirRef(2)))

    def test_plain_evaluation(self, engine):
        got = evaluate(Term("alpha"), engine, resolve_dirref=lambda uid: Bitmap())
        assert got == ids(engine, 1, 2)

    def test_scope_respected(self, engine):
        scope = ids(engine, 2, 3, 4)
        got = evaluate(Term("alpha"), engine, lambda uid: Bitmap(), scope)
        assert got == ids(engine, 2)


class TestDirRefs:
    def test_bare_ref_intersects_scope(self, engine):
        table = {7: ids(engine, 1, 2, 4)}
        got = evaluate(DirRef(7), engine, table.__getitem__,
                       scope=ids(engine, 2, 3, 4))
        assert got == ids(engine, 2, 4)

    def test_and_with_ref_narrows_first(self, engine):
        table = {7: ids(engine, 1, 2)}
        got = evaluate(And([Term("alpha"), DirRef(7)]), engine,
                       table.__getitem__)
        assert got == ids(engine, 1, 2)
        table = {7: ids(engine, 3, 4)}
        got = evaluate(And([Term("alpha"), DirRef(7)]), engine,
                       table.__getitem__)
        assert not got

    def test_or_with_ref_unions(self, engine):
        table = {7: ids(engine, 4)}
        got = evaluate(Or([Term("alpha"), DirRef(7)]), engine,
                       table.__getitem__)
        assert got == ids(engine, 1, 2, 4)

    def test_not_ref_is_scope_minus_ref(self, engine):
        table = {7: ids(engine, 1, 2)}
        got = evaluate(Not(DirRef(7)), engine, table.__getitem__)
        assert got == ids(engine, 3, 4)

    def test_nested_structure(self, engine):
        table = {1: ids(engine, 1, 2, 3), 2: ids(engine, 3, 4)}
        query = And([Or([DirRef(2), Term("alpha")]), Not(Term("gamma"))])
        got = evaluate(query, engine, table.__getitem__)
        # Or: {3,4} | {1,2} = all; Not gamma removes 2,3 -> {1,4}
        assert got == ids(engine, 1, 4)

    def test_dangling_ref_is_empty(self, engine):
        got = evaluate(DirRef(99), engine, lambda uid: Bitmap())
        assert not got

    def test_matchall_returns_scope(self, engine):
        scope = ids(engine, 2, 4)
        got = evaluate(MatchAll(), engine, lambda uid: Bitmap(), scope)
        assert got == scope

    def test_result_always_subset_of_scope(self, engine):
        scope = ids(engine, 1, 3)
        table = {5: ids(engine, 1, 2, 3, 4)}
        for query in (Term("alpha"), DirRef(5), Not(Term("alpha")),
                      Or([DirRef(5), Term("delta")]),
                      And([DirRef(5), Not(DirRef(5))])):
            got = evaluate(query, engine, table.__getitem__, scope)
            assert got.issubset(scope), query
