"""Unit tests for the metrics registry and the Observability bundle."""

import pytest

from repro.obs import Observability
from repro.obs.metrics import (DEFAULT_BOUNDS, Histogram, MetricsRegistry,
                               NULL_METRICS)
from repro.util.clock import VirtualClock
from repro.util.stats import Counters


class TestHistogram:
    def test_buckets_and_overflow(self):
        h = Histogram("h", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 3
        assert h.counts == [1, 1, 1]
        assert h.min_value == 0.5 and h.max_value == 50.0
        assert h.mean == pytest.approx(55.5 / 3)

    def test_bounds_must_be_sorted(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(10.0, 1.0))

    def test_empty_mean_is_zero(self):
        assert Histogram("h").mean == 0.0

    def test_to_obj(self):
        h = Histogram("h", bounds=(1.0,))
        h.observe(0.5)
        h.observe(2.0)
        obj = h.to_obj()
        assert obj["count"] == 2
        assert obj["buckets"] == {"le_1": 1, "overflow": 1}
        assert obj["min"] == 0.5 and obj["max"] == 2.0


class TestMetricsRegistry:
    def test_inc_always_lands_in_shared_counters(self):
        counters = Counters()
        metrics = MetricsRegistry(counters=counters)  # disabled
        metrics.inc("cache.hits")
        metrics.inc("cache.hits", 2)
        assert counters.get("cache.hits") == 3

    def test_observe_gated_by_enabled(self):
        metrics = MetricsRegistry()
        metrics.observe("lat", 1.0)
        assert metrics.histogram("lat") is None
        metrics.enable()
        metrics.observe("lat", 1.0)
        assert metrics.histogram("lat").count == 1
        metrics.disable()
        metrics.observe("lat", 1.0)
        assert metrics.histogram("lat").count == 1

    def test_time_on_virtual_clock(self):
        clock = VirtualClock()
        metrics = MetricsRegistry(clock=clock, enabled=True)
        with metrics.time("op"):
            clock.advance(3.0)
        hist = metrics.histogram("op")
        assert hist.count == 1
        assert hist.total == pytest.approx(3.0)

    def test_time_disabled_is_noop(self):
        metrics = MetricsRegistry()
        with metrics.time("op"):
            pass
        assert metrics.histograms() == {}

    def test_snapshot_and_clear(self):
        metrics = MetricsRegistry(enabled=True)
        metrics.inc("c")
        metrics.observe("h", 0.5)
        snap = metrics.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["histograms"]["h"]["count"] == 1
        metrics.clear_histograms()
        assert metrics.histograms() == {}

    def test_custom_bounds_first_observation_wins(self):
        metrics = MetricsRegistry(enabled=True)
        metrics.observe("h", 5.0, bounds=(10.0,))
        assert metrics.histogram("h").bounds == (10.0,)

    def test_null_metrics_shared_and_disabled(self):
        assert not NULL_METRICS.enabled
        assert DEFAULT_BOUNDS == tuple(sorted(DEFAULT_BOUNDS))


class TestObservability:
    def test_bundle_toggles_both(self):
        obs = Observability()
        assert not obs.enabled
        obs.enable()
        assert obs.trace.enabled and obs.metrics.enabled
        assert obs.enabled
        obs.disable()
        assert not (obs.trace.enabled or obs.metrics.enabled)

    def test_shared_clock_and_counters(self):
        clock, counters = VirtualClock(), Counters()
        obs = Observability(clock=clock, counters=counters, enabled=True)
        obs.metrics.inc("x")
        assert counters.get("x") == 1
        assert obs.trace.clock is clock

    def test_snapshot_includes_span_breakdown(self):
        obs = Observability(enabled=True)
        with obs.trace.span("op"):
            pass
        snap = obs.snapshot()
        assert set(snap) == {"counters", "histograms", "spans",
                             "spans_dropped"}
        assert snap["spans"]["op"]["count"] == 1
        assert snap["spans_dropped"] == 0

    def test_clear_drops_spans_and_histograms(self):
        obs = Observability(enabled=True)
        with obs.trace.span("op"):
            pass
        obs.metrics.observe("h", 1.0)
        obs.clear()
        assert obs.trace.spans() == []
        assert obs.metrics.histograms() == {}
