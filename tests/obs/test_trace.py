"""Unit tests for the span tracer."""

import json

import pytest

from repro.obs.trace import NOOP_SPAN, NULL_TRACER, TraceContext
from repro.util.clock import VirtualClock


def test_disabled_by_default_and_noop_span_is_shared():
    trace = TraceContext()
    assert not trace.enabled
    span = trace.span("x", attr=1)
    assert span is NOOP_SPAN
    with span as s:
        s.set(more=2)  # must be a silent no-op
    trace.event("e")
    trace.set_op_id(7)
    assert trace.spans() == []
    assert len(trace) == 0


def test_null_tracer_is_disabled():
    assert not NULL_TRACER.enabled
    assert NULL_TRACER.span("x") is NOOP_SPAN


def test_span_nesting_and_parents():
    trace = TraceContext(enabled=True)
    with trace.span("outer") as outer:
        with trace.span("inner") as inner:
            assert trace.current() is inner
        with trace.span("inner2"):
            pass
    spans = trace.spans()
    names = [s.name for s in spans]
    # children retire before their parent
    assert names == ["inner", "inner2", "outer"]
    by_name = {s.name: s for s in spans}
    assert by_name["inner"].parent_id == outer.span_id
    assert by_name["inner2"].parent_id == outer.span_id
    assert by_name["outer"].parent_id is None


def test_event_is_zero_duration_and_nested():
    trace = TraceContext(enabled=True)
    with trace.span("op") as op:
        trace.event("touch", key="k")
    events = trace.spans(name="touch")
    assert len(events) == 1
    assert events[0].parent_id == op.span_id
    assert events[0].wall_seconds == 0.0
    assert events[0].attrs == {"key": "k"}


def test_set_op_id_stamps_the_root_span():
    trace = TraceContext(enabled=True)
    with trace.span("root"):
        with trace.span("child"):
            trace.set_op_id(42)
    root = trace.spans(name="root")[0]
    child = trace.spans(name="child")[0]
    assert root.op_id == 42
    assert child.op_id is None
    assert trace.spans(op_id=42) == [root]


def test_set_op_id_without_open_span_is_a_noop():
    trace = TraceContext(enabled=True)
    trace.set_op_id(3)  # nothing open — must not raise
    assert trace.spans() == []


def test_error_capture_on_exception():
    trace = TraceContext(enabled=True)
    with pytest.raises(ValueError):
        with trace.span("boom"):
            raise ValueError("bad")
    span = trace.spans(name="boom")[0]
    assert span.error == "ValueError: bad"


def test_exception_unwinds_skewed_stack():
    """A child abandoned by an exception is retired when the parent exits."""
    trace = TraceContext(enabled=True)
    with pytest.raises(RuntimeError):
        with trace.span("outer"):
            child = trace.span("child")
            child.__enter__()
            raise RuntimeError("no exit for child")
    assert {s.name for s in trace.spans()} == {"outer", "child"}
    assert trace.current() is None


def test_virtual_clock_intervals():
    clock = VirtualClock()
    trace = TraceContext(clock=clock, enabled=True)
    with trace.span("timed"):
        clock.advance(2.5)
    span = trace.spans(name="timed")[0]
    assert span.virtual_seconds == pytest.approx(2.5)


def test_ring_buffer_drops_oldest():
    trace = TraceContext(enabled=True, capacity=3)
    for i in range(5):
        trace.event(f"e{i}")
    assert [s.name for s in trace.spans()] == ["e2", "e3", "e4"]
    assert trace.dropped == 2


def test_clear_resets_everything():
    trace = TraceContext(enabled=True, capacity=2)
    for i in range(4):
        trace.event(f"e{i}")
    trace.clear()
    assert trace.spans() == [] and trace.dropped == 0


def test_export_jsonl_round_trips():
    trace = TraceContext(enabled=True)
    with trace.span("op", path="/x") as span:
        span.set(hits=3)
    lines = trace.export_jsonl().splitlines()
    assert len(lines) == 1
    obj = json.loads(lines[0])
    assert obj["name"] == "op"
    assert obj["attrs"] == {"path": "/x", "hits": 3}
    assert obj["parent"] is None
    assert obj["wall_ms"] >= 0.0


def test_breakdown_subtracts_child_time():
    trace = TraceContext(enabled=True)
    with trace.span("outer"):
        with trace.span("inner"):
            pass
    breakdown = trace.breakdown()
    assert set(breakdown) == {"outer", "inner"}
    assert breakdown["outer"]["count"] == 1
    assert breakdown["outer"]["self_ms"] <= breakdown["outer"]["wall_ms"]
    # inner has no children: self == wall
    assert breakdown["inner"]["self_ms"] == breakdown["inner"]["wall_ms"]


def test_to_obj_shape():
    trace = TraceContext(enabled=True)
    with trace.span("op", op_id=9):
        pass
    obj = trace.spans()[0].to_obj()
    assert obj["op"] == 9
    assert obj["t1"] >= obj["t0"]
    assert "attrs" not in obj  # empty attrs stay out of the export
