"""Failure injection: remote outages and full devices must degrade cleanly."""

import pytest

from repro.errors import NoSpace, RemoteUnavailable
from repro.core.hacfs import HacFileSystem
from repro.remote.rpc import RpcTransport
from repro.remote.searchsvc import SimulatedSearchService
from repro.vfs.blockdev import BlockDevice
from repro.vfs.filesystem import FileSystem


class FlakyTransport(RpcTransport):
    """Fails exactly when told to."""

    def __init__(self, name, clock=None):
        super().__init__(name, clock=clock)
        self.down = False

    def call(self, what, fn):
        if self.down:
            raise RemoteUnavailable(self.name, f"{what} (outage)")
        return super().call(what, fn)


@pytest.fixture
def flaky_world(populated):
    transport = FlakyTransport("digilib", clock=populated.clock)
    lib = SimulatedSearchService("digilib", documents={
        "fp-survey": "fingerprint survey paper",
        "fp-new": "new fingerprint techniques",
    }, transport=transport)
    populated.mkdir("/lib")
    populated.smount("/lib", lib)
    return populated, lib, transport


class TestRemoteOutage:
    def test_existing_remote_links_survive_outage(self, flaky_world):
        hac, lib, transport = flaky_world
        hac.smkdir("/fp", "fingerprint")
        remote_before = {t for _c, t in hac.links("/fp").values()
                         if t.startswith("digilib")}
        assert len(remote_before) == 2
        transport.down = True
        hac.ssync("/")   # must not raise, must not lose the links
        remote_after = {t for _c, t in hac.links("/fp").values()
                        if t.startswith("digilib")}
        assert remote_after == remote_before
        assert hac.counters.get("consistency.remote_failures") > 0

    def test_local_results_unaffected_by_outage(self, flaky_world):
        hac, lib, transport = flaky_world
        transport.down = True
        hac.smkdir("/fp", "fingerprint")
        names = set(hac.links("/fp"))
        assert {"fp-design.txt", "msg1.txt", "match.c"} <= names

    def test_recovery_after_outage(self, flaky_world):
        hac, lib, transport = flaky_world
        transport.down = True
        hac.smkdir("/fp", "fingerprint")
        assert not any(t.startswith("digilib")
                       for _c, t in hac.links("/fp").values())
        transport.down = False
        lib.add_document("fp-extra", "extra fingerprint doc")
        hac.ssync("/")
        remote = {t for _c, t in hac.links("/fp").values()
                  if t.startswith("digilib")}
        assert len(remote) == 3

    def test_fetch_outage_raises_cleanly(self, flaky_world):
        hac, lib, transport = flaky_world
        hac.smkdir("/fp", "fingerprint")
        name = next(n for n, (_c, t) in hac.links("/fp").items()
                    if t.startswith("digilib"))
        transport.down = True
        with pytest.raises(RemoteUnavailable):
            hac.read_file(f"/fp/{name}")


class TestDeviceFull:
    def test_write_fails_with_nospace(self):
        device = BlockDevice(block_size=512, capacity_blocks=20)
        fs = FileSystem(device=device)
        hac = HacFileSystem(fs=fs)
        with pytest.raises(NoSpace):
            hac.write_file("/big", b"x" * (512 * 40))

    def test_metadata_growth_hits_capacity(self):
        device = BlockDevice(block_size=512, capacity_blocks=6)
        fs = FileSystem(device=device)
        hac = HacFileSystem(fs=fs)
        with pytest.raises(NoSpace):
            for i in range(200):
                hac.mkdir(f"/d{i}")

    def test_failed_write_leaves_fs_usable(self):
        device = BlockDevice(block_size=512, capacity_blocks=30)
        fs = FileSystem(device=device)
        hac = HacFileSystem(fs=fs)
        hac.write_file("/ok", b"fits")
        with pytest.raises(NoSpace):
            hac.write_file("/big", b"x" * (512 * 64))
        assert hac.read_file("/ok") == b"fits"
        hac.write_file("/ok2", b"still works")
