"""Failure injection: remote outages and full devices must degrade cleanly."""

import pytest

from repro.errors import NoSpace, RemoteUnavailable
from repro.core.hacfs import HacFileSystem
from repro.remote.rpc import RpcTransport
from repro.remote.searchsvc import SimulatedSearchService
from repro.vfs.blockdev import BlockDevice
from repro.vfs.filesystem import FileSystem


class FlakyTransport(RpcTransport):
    """Fails exactly when told to."""

    def __init__(self, name, clock=None):
        super().__init__(name, clock=clock)
        self.down = False

    def call(self, what, fn):
        if self.down:
            raise RemoteUnavailable(self.name, f"{what} (outage)")
        return super().call(what, fn)


@pytest.fixture
def flaky_world(populated):
    transport = FlakyTransport("digilib", clock=populated.clock)
    lib = SimulatedSearchService("digilib", documents={
        "fp-survey": "fingerprint survey paper",
        "fp-new": "new fingerprint techniques",
    }, transport=transport)
    populated.mkdir("/lib")
    populated.smount("/lib", lib)
    return populated, lib, transport


class TestRemoteOutage:
    def test_existing_remote_links_survive_outage(self, flaky_world):
        hac, lib, transport = flaky_world
        hac.smkdir("/fp", "fingerprint")
        remote_before = {t for _c, t in hac.links("/fp").values()
                         if t.startswith("digilib")}
        assert len(remote_before) == 2
        transport.down = True
        hac.ssync("/")   # must not raise, must not lose the links
        remote_after = {t for _c, t in hac.links("/fp").values()
                        if t.startswith("digilib")}
        assert remote_after == remote_before
        assert hac.counters.get("consistency.remote_failures") > 0

    def test_local_results_unaffected_by_outage(self, flaky_world):
        hac, lib, transport = flaky_world
        transport.down = True
        hac.smkdir("/fp", "fingerprint")
        names = set(hac.links("/fp"))
        assert {"fp-design.txt", "msg1.txt", "match.c"} <= names

    def test_recovery_after_outage(self, flaky_world):
        hac, lib, transport = flaky_world
        transport.down = True
        hac.smkdir("/fp", "fingerprint")
        assert not any(t.startswith("digilib")
                       for _c, t in hac.links("/fp").values())
        transport.down = False
        lib.add_document("fp-extra", "extra fingerprint doc")
        hac.ssync("/")
        remote = {t for _c, t in hac.links("/fp").values()
                  if t.startswith("digilib")}
        assert len(remote) == 3

    def test_fetch_outage_raises_cleanly(self, flaky_world):
        hac, lib, transport = flaky_world
        hac.smkdir("/fp", "fingerprint")
        name = next(n for n, (_c, t) in hac.links("/fp").items()
                    if t.startswith("digilib"))
        transport.down = True
        with pytest.raises(RemoteUnavailable):
            hac.read_file(f"/fp/{name}")


class TestDeviceFull:
    def test_write_fails_with_nospace(self):
        device = BlockDevice(block_size=512, capacity_blocks=20)
        fs = FileSystem(device=device)
        hac = HacFileSystem(fs=fs)
        with pytest.raises(NoSpace):
            hac.write_file("/big", b"x" * (512 * 40))

    def test_metadata_growth_hits_capacity(self):
        device = BlockDevice(block_size=512, capacity_blocks=6)
        fs = FileSystem(device=device)
        hac = HacFileSystem(fs=fs)
        with pytest.raises(NoSpace):
            for i in range(200):
                hac.mkdir(f"/d{i}")

    def test_failed_write_leaves_fs_usable(self):
        device = BlockDevice(block_size=512, capacity_blocks=30)
        fs = FileSystem(device=device)
        hac = HacFileSystem(fs=fs)
        hac.write_file("/ok", b"fits")
        with pytest.raises(NoSpace):
            hac.write_file("/big", b"x" * (512 * 64))
        assert hac.read_file("/ok") == b"fits"
        hac.write_file("/ok2", b"still works")


class TestStaleDegradation:
    """The PR 2 acceptance scenario: a back-end failing half its calls must
    degrade queries to last-known-good links flagged stale — no exception,
    no corruption — and the breaker must stop issuing RPCs once tripped
    until its cool-down elapses on the virtual clock."""

    @pytest.fixture
    def degraded_world(self, populated):
        from repro.remote.rpc import CircuitBreaker

        breaker = CircuitBreaker(failure_threshold=3, cooldown=1000.0,
                                 counters=populated.counters, name="digilib")
        transport = RpcTransport("digilib", clock=populated.clock,
                                 counters=populated.counters, seed=5,
                                 breaker=breaker)
        lib = SimulatedSearchService("digilib", documents={
            "fp-survey": "fingerprint survey paper",
            "fp-new": "new fingerprint techniques",
        }, transport=transport)
        populated.mkdir("/lib")
        populated.smount("/lib", lib)
        populated.smkdir("/fp", "fingerprint")   # healthy first sync
        transport.failure_rate = 0.5
        return populated, transport, breaker

    @staticmethod
    def remote_links(hac):
        return {n for n, (_c, t) in hac.links("/fp").items()
                if t.startswith("digilib")}

    def test_degrades_to_held_links_and_breaker_trips(self, degraded_world):
        hac, transport, breaker = degraded_world
        good = self.remote_links(hac)
        assert len(good) == 2
        assert hac.health("/fp")["directories"] == {}

        for _ in range(50):                      # never raises to the caller
            hac.clock.tick()
            hac.ssync("/")
            if breaker.state == "open":
                break
        assert breaker.state == "open"

        # while open: no RPC issued, links held, flagged stale
        calls_before = transport.calls
        hac.clock.tick()
        hac.ssync("/")
        assert transport.calls == calls_before
        assert self.remote_links(hac) == good
        entry = hac.health("/fp")["directories"]["/fp"]
        assert "digilib" in entry["degraded_remote"]
        assert set(entry["degraded_links"]) == good
        assert hac.counters.get("breaker.digilib.rejections") >= 1
        assert [f for f in hac.fsck() if f.severity == "error"] == []

    def test_cooldown_and_recovery_clear_the_stale_flag(self, degraded_world):
        hac, transport, breaker = degraded_world
        good = self.remote_links(hac)
        for _ in range(50):
            hac.clock.tick()
            hac.ssync("/")
            if breaker.state == "open":
                break
        assert breaker.state == "open"

        hac.clock.advance(1000.0)                # cool-down elapses
        transport.failure_rate = 0.0             # back-end healthy again
        calls_before = transport.calls
        hac.clock.tick()
        hac.ssync("/")
        assert transport.calls > calls_before    # probe went through
        assert breaker.state == "closed"
        assert hac.health("/fp")["directories"] == {}
        assert self.remote_links(hac) == good
        assert hac.counters.get("consistency.stale_recoveries") >= 1

    def test_mount_health_reflects_breaker_state(self, degraded_world):
        hac, transport, breaker = degraded_world
        assert hac.semmounts.health() == {"digilib": "closed"}
        for _ in range(50):
            hac.clock.tick()
            hac.ssync("/")
            if breaker.state == "open":
                break
        assert hac.semmounts.health() == {"digilib": "open"}
