"""Boundary conditions across the stack: empty, deep, wide, odd."""

import pytest

from repro.core.hacfs import HacFileSystem
from repro.cba.queryparser import parse_query


class TestEmptyWorlds:
    def test_smkdir_on_empty_unindexed_fs(self, hacfs):
        hacfs.smkdir("/q", "anything")
        assert hacfs.listdir("/q") == []
        hacfs.ssync("/")
        assert hacfs.listdir("/q") == []

    def test_matchall_query_links_everything(self, populated):
        populated.smkdir("/all", "*")
        assert len(populated.links("/all")) == 5

    def test_empty_query_text_is_matchall(self, populated):
        populated.smkdir("/every", "")
        assert len(populated.links("/every")) == 5

    def test_ssync_on_empty_root(self, hacfs):
        plan = hacfs.ssync("/")
        assert plan.is_noop

    def test_search_on_empty_engine(self, hacfs):
        assert not hacfs.engine.search(parse_query("anything"))


class TestDepthAndWidth:
    def test_deep_directory_chain(self, hacfs):
        path = "/" + "/".join(f"d{i}" for i in range(40))
        hacfs.makedirs(path)
        hacfs.write_file(path + "/leaf.txt", b"deep fingerprint")
        hacfs.clock.tick()
        hacfs.ssync("/")
        hacfs.smkdir("/q", "fingerprint")
        assert "leaf.txt" in hacfs.listdir("/q")
        assert hacfs.readlink("/q/leaf.txt") == path + "/leaf.txt"

    def test_deep_semantic_refinement_chain(self, populated):
        parent = ""
        for i in range(10):
            parent = f"{parent}/level{i}"
            populated.smkdir(parent, "fingerprint")
        assert "msg1.txt" in populated.listdir(parent)
        populated.unlink("/level0/msg1.txt")
        # the prohibition at the top empties the whole chain below
        assert "msg1.txt" not in populated.listdir(parent)

    def test_many_siblings_under_one_semantic_dir(self, populated):
        populated.smkdir("/hub", "fingerprint")
        for i in range(30):
            populated.smkdir(f"/hub/s{i}", "sensor OR minutiae")
        populated.unlink("/hub/msg1.txt")
        for i in range(0, 30, 7):
            assert "msg1.txt" not in populated.listdir(f"/hub/s{i}")

    def test_file_with_many_unique_terms(self, hacfs):
        words = " ".join(f"uniq{i:04d}" for i in range(3000))
        hacfs.write_file("/big.txt", words.encode())
        hacfs.clock.tick()
        hacfs.ssync("/")
        assert len(hacfs.engine.search(parse_query("uniq2999"))) == 1


class TestOddContent:
    def test_binary_ish_file_indexed_without_crash(self, hacfs):
        hacfs.write_file("/blob.bin", bytes(range(256)) * 4)
        hacfs.clock.tick()
        hacfs.ssync("/")
        assert len(hacfs.engine) == 1

    def test_empty_file(self, populated):
        populated.create("/empty.txt")
        populated.clock.tick()
        populated.ssync("/")
        populated.smkdir("/q", "fingerprint")
        assert "empty.txt" not in populated.listdir("/q")
        populated.smkdir("/allq", "*")
        assert "empty.txt" in populated.listdir("/allq")

    def test_unicode_content(self, hacfs):
        hacfs.write_file("/u.txt", "fingerprint café naïve 指紋\n".encode())
        hacfs.clock.tick()
        hacfs.ssync("/")
        hacfs.smkdir("/q", "fingerprint")
        assert "u.txt" in hacfs.listdir("/q")
        assert "café" in hacfs.read_file("/q/u.txt").decode()

    def test_zero_byte_write_then_append(self, hacfs):
        hacfs.write_file("/f", b"")
        hacfs.write_file("/f", b"fingerprint", append=True)
        hacfs.clock.tick()
        hacfs.ssync("/")
        assert len(hacfs.engine.search(parse_query("fingerprint"))) == 1


class TestQueryEdges:
    def test_query_of_only_stopwords(self, populated):
        # stopwords are not indexed, so nothing can match the term
        populated.smkdir("/q", "the")
        assert populated.listdir("/q") == []

    def test_self_reference_rejected(self, populated):
        from repro.errors import DependencyCycle
        populated.smkdir("/q", "fingerprint")
        with pytest.raises(DependencyCycle):
            populated.set_query("/q", "fingerprint AND /q")
        assert populated.get_query("/q") == "fingerprint"

    def test_double_negation(self, populated):
        populated.smkdir("/q", "NOT NOT fingerprint")
        assert set(populated.links("/q")) == {"fp-design.txt", "msg1.txt",
                                              "match.c"}

    def test_query_referencing_root(self, populated):
        populated.smkdir("/q", "fingerprint AND /")
        assert len(populated.links("/q")) == 3
