"""The chaos soak as a tier-1 gate, plus the CI sweep entry point.

The default run executes one short smoke seed (fast enough for every
test invocation).  The CI ``chaos-soak`` job re-runs this module with
``CHAOS_SEED`` / ``CHAOS_K`` / ``CHAOS_STEPS`` set to sweep three seeds
across both topologies at full length — same test, bigger soak.
"""

import os

from repro.chaos import ChaosRun

SEED = int(os.environ.get("CHAOS_SEED", "1"))
K = int(os.environ.get("CHAOS_K", "0"))
STEPS = int(os.environ.get("CHAOS_STEPS", "24"))
WINDOWS = int(os.environ.get("CHAOS_WINDOWS", "2"))


def test_soak_holds_every_invariant():
    run = ChaosRun(seed=SEED, k=K, steps=STEPS, windows=WINDOWS)
    report = run.run()
    assert report["ok"], "\n".join(report["violations"])
    assert report["steps"] == STEPS
    # the soak exercised real work, not a vacuous pass
    assert report["applied"] > 0
    assert report["reads_strong"] + report["reads_snapshot"] > 0
    # every device crash that fired was recovered from
    assert report["recoveries"] == report["crashes_hit"]
    # snapshot reads kept serving throughout
    assert run.chaos.counters.get("chaos.reads_snapshot_failed") == 0
