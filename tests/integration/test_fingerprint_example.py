"""The paper's running example, end to end (§2.1, §3.2).

A user works on a fingerprint project.  Relevant material is spread across
notes, mail, source code, a mounted laptop, and a remote digital library.
One semantic directory gathers it all; the user then curates it, refines it,
shares it, and survives reorganisations.
"""

import pytest

from repro.core.hacfs import HacFileSystem
from repro.remote.registry import SharedDirectoryRegistry
from repro.remote.remotefs import RemoteHacFileSystem
from repro.remote.searchsvc import SimulatedSearchService
from repro.shell.session import HacShell
from repro.vfs.filesystem import FileSystem
from repro.workloads.mailgen import MailGenerator


@pytest.fixture
def world():
    shell = HacShell(HacFileSystem())
    hac = shell.hacfs
    hac.makedirs("/notes")
    hac.write_file("/notes/ideas.txt",
                   b"fingerprint ridge counting approaches\n")
    hac.write_file("/notes/shopping.txt", b"milk, eggs\n")
    MailGenerator(seed=4).populate(hac, "/mail", count=15)
    laptop = FileSystem(name="laptop")
    laptop.makedirs("/src")
    laptop.write_file("/src/minutiae.c", b"/* fingerprint minutiae code */\n")
    hac.mkdir("/laptop")
    hac.mount("/laptop", laptop)
    library = SimulatedSearchService("digilib", documents={
        "fp-1975": "early fingerprint classification survey",
        "nn-1998": "neural networks in vision",
    }, titles={"fp-1975": "Henry1975"})
    hac.mkdir("/library")
    hac.smount("/library", library)
    hac.clock.tick()
    hac.ssync("/")
    return shell


class TestTheRunningExample:
    def test_gathering(self, world):
        world.smkdir("/fingerprint", "fingerprint")
        rows = world.sls("/fingerprint")
        targets = {t for _n, _c, t in rows}
        assert any("ino" in t for t in targets)           # local files
        assert "digilib://fp-1975" in targets             # the library
        names = {n for n, _c, _t in rows}
        assert "ideas.txt" in names
        assert "minutiae.c" in names                      # from the laptop

    def test_curation_and_refinement(self, world):
        world.smkdir("/fingerprint", "fingerprint")
        # remove noise: prohibit mail about deadlines that merely mentions it
        mail_links = [n for n, _c, _t in world.sls("/fingerprint")
                      if n.startswith("msg")]
        world.rm(f"/fingerprint/{mail_links[0]}")
        # keep a recipe for the team offsite, off-topic but wanted
        world.ln("/notes/shopping.txt", "/fingerprint/offsite.txt")
        # refine: mail-only subdirectory
        world.smkdir("/fingerprint/from-mail", "/mail")
        sub = {n for n, _c, _t in world.sls("/fingerprint/from-mail")}
        assert mail_links[0] not in sub
        assert sub <= {n for n, _c, _t in world.sls("/fingerprint")}
        world.ssync("/")
        assert mail_links[0] not in world.ls("/fingerprint")
        assert "offsite.txt" in world.ls("/fingerprint")

    def test_reading_through_links(self, world):
        world.smkdir("/fingerprint", "fingerprint")
        assert "ridge counting" in world.cat("/fingerprint/ideas.txt")
        assert "classification survey" in world.cat("/fingerprint/Henry1975")
        assert world.sact("/fingerprint/ideas.txt") == [
            "fingerprint ridge counting approaches"]

    def test_new_mail_arrives(self, world):
        world.smkdir("/fingerprint", "fingerprint")
        before = set(world.ls("/fingerprint").splitlines())
        world.hacfs.write_file(
            "/mail/msg9999.txt",
            b"From: boss\nSubject: fingerprint demo\n\nship the fingerprint demo\n")
        world.hacfs.clock.tick()
        world.ssync("/mail")  # "update ... as soon as new mail comes in"
        after = set(world.ls("/fingerprint").splitlines())
        assert after - before == {"msg9999.txt"}

    def test_project_reorganisation(self, world):
        world.smkdir("/fingerprint", "fingerprint")
        world.smkdir("/status", "/fingerprint AND deadline")
        world.hacfs.makedirs("/projects")
        world.mv("/fingerprint", "/projects/fingerprint")
        # the dependent query updated its display text and still evaluates
        assert world.squery("/status") == "/projects/fingerprint AND deadline"
        world.ssync("/")
        assert world.hacfs.is_semantic("/projects/fingerprint")

    def test_share_with_coworker(self, world):
        world.smkdir("/fingerprint", "fingerprint")
        registry = SharedDirectoryRegistry()
        rec = registry.publish("udi", world.hacfs, "/fingerprint")
        assert registry.search("fingerprint")[0].doc == rec

        coworker = HacFileSystem()
        coworker.makedirs("/work")
        coworker.write_file("/work/note.txt", b"my own fingerprint notes")
        coworker.ssync("/")
        ns = RemoteHacFileSystem("udi", world.hacfs,
                                 export_root="/fingerprint")
        coworker.mkdir("/udi")
        coworker.smount("/udi", ns)
        coworker.smkdir("/borrowed", "fingerprint")
        targets = {t for _c, t in coworker.links("/borrowed").values()}
        assert any(t.startswith("udi://") for t in targets)
