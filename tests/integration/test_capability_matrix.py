"""The paper's related-work comparison (§5), as one executable table.

Each row of the paper's argument — what SFS, Nebula, and HAC can and
cannot do — is asserted against our implementations of all three systems
over the same corpus.  If a baseline gains an ability it should not have,
or HAC loses one it claims, this file fails.
"""

import pytest

from repro.baselines.nebula import NebulaFileSystem
from repro.baselines.sfs import SemanticFileSystem
from repro.core.hacfs import HacFileSystem
from repro.errors import InvalidArgument
from repro.vfs.filesystem import FileSystem

DOCS = {
    "/docs/p1.txt": b"From: alice\nSubject: study\n\nfingerprint study\n",
    "/docs/p2.txt": b"From: bob\nSubject: images\n\nfingerprint and images\n",
    "/docs/p3.txt": b"From: alice\nSubject: seg\n\nimage segmentation\n",
}


def physical_fs():
    fs = FileSystem()
    fs.makedirs("/docs")
    for path, data in DOCS.items():
        fs.write_file(path, data)
    return fs


@pytest.fixture
def sfs():
    system = SemanticFileSystem(physical_fs())
    system.index_all()
    return system


@pytest.fixture
def nebula():
    return NebulaFileSystem(physical_fs())


@pytest.fixture
def hac():
    system = HacFileSystem()
    system.makedirs("/docs")
    for path, data in DOCS.items():
        system.write_file(path, data)
    system.clock.tick()
    system.ssync("/")
    return system


class TestAllThreeCanQuery:
    def test_sfs_conjunctive_attributes(self, sfs):
        assert sfs.lookup("/sfs/from:/alice/text:/fingerprint") == ["/docs/p1.txt"]

    def test_nebula_boolean_queries(self, nebula):
        nebula.create_view("v", "fingerprint AND from:alice")
        assert nebula.view_contents("v") == ["/docs/p1.txt"]

    def test_hac_boolean_queries(self, hac):
        hac.smkdir("/v", "fingerprint AND from:alice")
        assert sorted(hac.links("/v")) == ["p1.txt"]


class TestResultsAsRealDirectories:
    """§5: only HAC's query results live in the physical file system."""

    def test_sfs_cannot_create_files_in_results(self, sfs):
        with pytest.raises(InvalidArgument):
            sfs.create_in_virtual("/sfs/from:/alice", "new.txt")

    def test_nebula_cannot_create_files_in_views(self, nebula):
        nebula.create_view("v", "fingerprint")
        with pytest.raises(InvalidArgument):
            nebula.create_file_in_view("v", "new.txt")

    def test_hac_semantic_dir_accepts_real_files(self, hac):
        hac.smkdir("/v", "fingerprint")
        hac.write_file("/v/notes.txt", b"my own notes")   # just works
        assert hac.read_file("/v/notes.txt") == b"my own notes"
        hac.clock.tick()
        hac.ssync("/")
        # and the file even participates in the directory's provided scope
        assert "notes.txt" in hac.listdir("/v")


class TestCustomisingResults:
    """§5: neither baseline lets users edit query results; HAC does."""

    def test_sfs_cannot_remove_results(self, sfs):
        with pytest.raises(InvalidArgument):
            sfs.remove_result("/sfs/from:/alice", "p1.txt")

    def test_nebula_cannot_remove_or_add(self, nebula):
        nebula.create_view("v", "fingerprint")
        with pytest.raises(InvalidArgument):
            nebula.remove_from_view("v", "/docs/p1.txt")
        with pytest.raises(InvalidArgument):
            nebula.add_to_view("v", "/docs/p3.txt")

    def test_hac_prohibits_and_pins(self, hac):
        hac.smkdir("/v", "fingerprint")
        hac.unlink("/v/p1.txt")                        # remove a result
        hac.symlink("/docs/p3.txt", "/v/p3.txt")       # add a non-match
        hac.ssync("/")
        assert sorted(hac.links("/v")) == ["p2.txt", "p3.txt"]

    def test_nebula_customises_by_scope_instead(self, nebula):
        # what Nebula *can* do: restructure the DAG
        nebula.create_view("alice", "from:alice")
        nebula.create_view("v", "fingerprint", scope=["alice"])
        assert nebula.view_contents("v") == ["/docs/p1.txt"]


class TestConsistencyModels:
    def test_nebula_contents_always_live(self, nebula):
        nebula.create_view("v", "fingerprint")
        nebula.physical.write_file("/docs/new.txt", b"late fingerprint\n")
        assert "/docs/new.txt" in nebula.view_contents("v")

    def test_sfs_needs_explicit_reindex(self, sfs):
        sfs.physical.write_file("/docs/new.txt", b"From: carol\n\nx\n")
        assert sfs.lookup("/sfs/from:/carol") == []
        sfs.index_all()
        assert sfs.lookup("/sfs/from:/carol") == ["/docs/new.txt"]

    def test_hac_is_lazy_but_scope_consistent(self, hac):
        hac.smkdir("/v", "fingerprint")
        hac.write_file("/docs/new.txt", b"late fingerprint\n")
        assert "new.txt" not in hac.listdir("/v")      # data lag (§2.4)
        hac.unlink("/v/p1.txt")
        assert "p1.txt" not in hac.listdir("/v")       # scope: immediate
        hac.clock.tick()
        hac.ssync("/")
        assert "new.txt" in hac.listdir("/v")
        assert "p1.txt" not in hac.listdir("/v")       # prohibition held
