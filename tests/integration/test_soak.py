"""Deterministic soak test: a medium-sized world driven hard, then audited.

A 200-file corpus, a dozen semantic directories (hierarchies + query
references + a remote mount), 250 scripted-random operations, periodic
syncs — and at the end, the full scope-invariant audit from the property
suite plus structural sanity checks.  One seed, fully reproducible.
"""

import random

import pytest

from repro.core.hacfs import HacFileSystem
from repro.remote.searchsvc import SimulatedSearchService
from repro.util import pathutil
from repro.workloads.corpus import CorpusConfig, CorpusGenerator
from repro.vfs.walker import iter_files

from tests.properties.test_scope_invariant import check_invariant

TOPICS = {"alphatop": 0.2, "betatop": 0.1, "gammatop": 0.4}


@pytest.fixture(scope="module")
def world():
    hac = HacFileSystem(num_blocks=128)
    gen = CorpusGenerator(CorpusConfig(n_files=200, words_per_file=60,
                                       dirs=8, topics=TOPICS, seed=99))
    gen.populate(hac, "/db")
    lib = SimulatedSearchService("lib", documents={
        f"doc{i}": f"remote alphatop document number {i}" for i in range(6)
    })
    hac.mkdir("/lib")
    hac.smount("/lib", lib)
    hac.clock.tick()
    hac.ssync("/")

    hac.smkdir("/alpha", "alphatop")
    hac.smkdir("/alpha/narrow", "betatop OR number")
    hac.smkdir("/beta", "betatop")
    hac.smkdir("/combo", "/alpha AND gammatop")
    hac.smkdir("/anti", "gammatop AND NOT betatop")
    hac.smkdir("/db/dir001/local", "alphatop")
    return hac


def drive(hac, seed, steps=250):
    rng = random.Random(seed)
    files = [p for p, _n in iter_files(hac.fs, "/db")]
    sem_dirs = ["/alpha", "/alpha/narrow", "/beta", "/combo", "/anti"]
    words = list(TOPICS) + ["filler", "noise"]
    for step in range(steps):
        op = rng.randrange(8)
        try:
            if op == 0:  # write new
                path = f"/db/dir{rng.randrange(8):03d}/x{step}.txt"
                text = " ".join(rng.choices(words, k=8))
                hac.write_file(path, (text + "\n").encode())
                files.append(path)
            elif op == 1 and files:  # modify
                victim = rng.choice(files)
                if hac.isfile(victim):
                    hac.write_file(victim, b"gammatop extra\n", append=True)
            elif op == 2 and files:  # delete
                victim = rng.choice(files)
                if hac.isfile(victim):
                    hac.unlink(victim)
                    files.remove(victim)
            elif op == 3 and files:  # rename
                victim = rng.choice(files)
                dst = f"/db/dir{rng.randrange(8):03d}/mv{step}.txt"
                if hac.isfile(victim) and not hac.exists(dst, follow=False):
                    hac.rename(victim, dst)
                    files.remove(victim)
                    files.append(dst)
            elif op == 4:  # curate: prohibit something
                sd = rng.choice(sem_dirs)
                names = sorted(hac.links(sd))
                if names:
                    hac.unlink(f"{sd}/{rng.choice(names)}")
            elif op == 5 and files:  # curate: permanent link
                sd = rng.choice(sem_dirs)
                target = rng.choice(files)
                link = f"{sd}/pin{step}"
                if hac.isfile(target) and not hac.exists(link, follow=False):
                    hac.symlink(target, link)
            elif op == 6:  # partial sync
                hac.clock.tick()
                hac.ssync(rng.choice(["/db", "/db/dir000", "/"]))
            elif op == 7:  # time passes
                hac.clock.tick()
        except Exception as exc:  # no operation may corrupt the system
            raise AssertionError(f"step {step} op {op} blew up: {exc}") from exc


class TestSoak:
    def test_soak_then_audit(self, world):
        drive(world, seed=7)
        world.clock.tick()
        world.ssync("/")
        check_invariant(world)

    def test_structures_consistent_after_soak(self, world):
        # every registered directory resolves and owns state
        for uid, path in list(world.dirmap.items()):
            assert world.fs.isdir(path), path
            assert world.meta.get(uid) is not None, path
            assert uid in world.depgraph
        # every live directory is registered
        from repro.vfs.walker import walk
        for dirpath, _d, _f in walk(world.fs, "/"):
            assert world.dirmap.uid_of(dirpath) is not None, dirpath

    def test_engine_registry_matches_live_files(self, world):
        live = {(res.fs.fsid, res.node.ino)
                for p, _n in iter_files(world.fs, "/")
                for res in [world.fs.resolve(p, follow=False)]}
        indexed = set(world.engine.mtime_snapshot())
        assert indexed <= live | indexed  # sanity
        # after the final full sync, indexed == live exactly
        assert indexed == live

    def test_fsck_clean_after_soak(self, world):
        errors = [f for f in world.fsck() if f.severity == "error"]
        assert errors == []

    def test_restore_after_soak(self, world):
        revived = HacFileSystem.restore(world.fs)
        assert revived.semantic_dirs() == world.semantic_dirs()
        for sd in world.semantic_dirs():
            assert revived.get_query(sd) == world.get_query(sd)
            assert revived.prohibited(sd) == world.prohibited(sd)
