"""Write-ahead intent journal mechanics (record level, no HacFileSystem)."""

import pytest

from repro.core.journal import Journal, WAL_PREFIX
from repro.util.stats import Counters
from repro.vfs.blockdev import BlockDevice, FaultPlan


@pytest.fixture
def dev():
    return BlockDevice()


@pytest.fixture
def journal(dev):
    return Journal(dev, Counters())


def wal_keys(dev):
    return sorted(k for k in dev.record_keys() if k.startswith(WAL_PREFIX))


class TestLifecycle:
    def test_commit_leaves_no_wal_records(self, dev, journal):
        intent = journal.begin("op", {"path": "/d"})
        dev.write_record("semdir:1", b"state")
        journal.commit(intent)
        assert wal_keys(dev) == []
        assert dev.read_record("semdir:1") == b"state"

    def test_preimage_written_before_the_touching_write(self, dev, journal):
        dev.write_record("semdir:1", b"old")
        intent = journal.begin("op", {})
        seen = []
        original = dev.record_hook

        def spy(key, old):
            if not key.startswith(WAL_PREFIX):
                seen.append((key,
                             dev.read_record(f"{WAL_PREFIX}{intent.seq}:u0")
                             is not None))
            original(key, old)

        dev.record_hook = spy
        dev.write_record("semdir:1", b"new")
        # at hook time the pre-image did not exist yet; right after the hook
        # (i.e. before the touching write persisted) it does
        assert seen == [("semdir:1", False)]
        assert dev.read_record(f"{WAL_PREFIX}{intent.seq}:u0") is not None

    def test_only_first_touch_is_captured(self, dev, journal):
        intent = journal.begin("op", {})
        dev.write_record("k", b"v1")
        dev.write_record("k", b"v2")
        dev.write_record("k", b"v3")
        assert intent.capture_order == ["k"]

    def test_nested_begin_joins_outer_intent(self, dev, journal):
        outer = journal.begin("outer", {})
        assert journal.begin("inner", {}) is None
        dev.write_record("k", b"v")
        assert outer.capture_order == ["k"]
        journal.commit(outer)
        assert wal_keys(dev) == []

    def test_no_capture_outside_an_intent(self, dev, journal):
        dev.write_record("k", b"v")
        assert wal_keys(dev) == []


class TestPendingAndRollback:
    def test_rollback_restores_preimages_in_reverse(self, dev, journal):
        dev.write_record("a", b"a-old")
        intent = journal.begin("op", {"x": 1})
        dev.write_record("a", b"a-new")
        dev.write_record("b", b"b-new")       # did not exist before
        dev.delete_record("a")
        journal.abandon(intent)

        pending = journal.pending()
        assert [(p.seq, p.op) for p in pending] == [(intent.seq, "op")]
        assert pending[0].keys == ["a", "b"]
        journal.rollback_records(pending[0])
        assert dev.read_record("a") == b"a-old"
        assert dev.read_record("b") is None
        assert wal_keys(dev) == []

    def test_commit_then_reopen_sees_nothing_pending(self, dev, journal):
        intent = journal.begin("op", {})
        dev.write_record("k", b"v")
        journal.commit(intent)
        reopened = Journal(dev, Counters())
        assert reopened.pending() == []

    def test_seq_continues_after_reopen(self, dev, journal):
        intent = journal.begin("op", {})
        dev.write_record("k", b"v")
        journal.abandon(intent)
        reopened = Journal(dev, Counters())
        fresh = reopened.begin("op2", {})
        assert fresh.seq > intent.seq

    def test_orphan_preimages_are_cleared(self, dev, journal):
        # a crash between begin-delete and u-record GC leaves orphans
        intent = journal.begin("op", {})
        dev.write_record("k", b"v")
        journal.abandon(intent)
        dev.delete_record(f"{WAL_PREFIX}{intent.seq}:begin")
        assert journal.pending() == []        # no begin → not pending
        assert journal.clear_orphans() == 1
        assert wal_keys(dev) == []

    def test_corrupt_begin_record_is_skipped(self, dev, journal):
        intent = journal.begin("op", {})
        dev.write_record("k", b"v")
        journal.abandon(intent)
        dev.corrupt_record(f"{WAL_PREFIX}{intent.seq}:begin")
        assert journal.pending() == []

    def test_torn_preimage_truncates_the_prefix(self, dev, journal):
        dev.write_record("a", b"a-old")
        dev.write_record("b", b"b-old")
        intent = journal.begin("op", {})
        dev.write_record("a", b"a-new")
        dev.write_record("b", b"b-new")
        journal.abandon(intent)
        # tear the SECOND pre-image: rollback must still restore the first
        dev.corrupt_record(f"{WAL_PREFIX}{intent.seq}:u1")
        pending = journal.pending()
        assert pending[0].keys == ["a"]

    def test_rollback_active_is_atomicity_for_soft_failures(self, dev, journal):
        dev.write_record("a", b"a-old")
        intent = journal.begin("op", {})
        dev.write_record("a", b"a-mid")
        dev.set_fault_plan(FaultPlan(enospc_at={dev.record_write_index}))
        from repro.errors import NoSpace
        with pytest.raises(NoSpace):
            dev.write_record("a", b"a-new")
        journal.rollback_active(intent)
        assert dev.read_record("a") == b"a-old"
        assert wal_keys(dev) == []
        assert journal.active is None


class TestCrashPoints:
    def test_crash_during_preimage_write_loses_nothing(self, dev):
        from repro.errors import DeviceCrashed

        journal = Journal(dev, Counters())
        dev.write_record("a", b"a-old")       # index 0
        intent = journal.begin("op", {})      # index 1 (begin)
        # index 2 is the wal pre-image write for "a": crash exactly there
        dev.set_fault_plan(FaultPlan(crash_at=2))
        with pytest.raises(DeviceCrashed):
            dev.write_record("a", b"a-new")
        journal.abandon(intent)
        dev.clear_faults()
        reopened = Journal(dev, Counters())
        pending = reopened.pending()
        assert len(pending) == 1 and pending[0].keys == []
        reopened.rollback_records(pending[0])
        assert dev.read_record("a") == b"a-old"

    def test_crash_mid_commit_stays_committed(self, dev):
        from repro.errors import DeviceCrashed

        journal = Journal(dev, Counters())
        intent = journal.begin("op", {})
        dev.write_record("k", b"v")
        # commit deletes begin first; crash on the u0 delete right after
        dev.set_fault_plan(FaultPlan(crash_at=dev.record_write_index + 1))
        with pytest.raises(DeviceCrashed):
            journal.commit(intent)
        dev.clear_faults()
        reopened = Journal(dev, Counters())
        assert reopened.pending() == []       # begin gone → committed
        assert reopened.clear_orphans() >= 1  # leftover u0 swept
        assert dev.read_record("k") == b"v"   # the operation stuck
