"""Scope-consistency scenarios (§2.3's four triggers, plus cascades)."""

import pytest


def names(hacfs, path):
    return set(hacfs.links(path))


class TestHierarchicalRefinement:
    def test_child_is_refinement_of_parent(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.smkdir("/fp/mail", "alice OR bob")
        assert names(populated, "/fp/mail") == {"msg1.txt"}  # msg2 not in parent

    def test_child_subset_invariant(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.smkdir("/fp/sub", "sensor")
        parent_targets = {t for _c, t in populated.links("/fp").values()}
        child_targets = {t for _c, t in populated.links("/fp/sub").values()}
        assert child_targets <= parent_targets

    def test_trigger1_parent_links_edited(self, populated):
        """§2.3 trigger 1: a user modifies the links in the parent."""
        populated.smkdir("/fp", "fingerprint")
        populated.smkdir("/fp/mail", "alice")
        assert names(populated, "/fp/mail") == {"msg1.txt"}
        populated.unlink("/fp/msg1.txt")       # parent result shrinks
        assert names(populated, "/fp/mail") == set()

    def test_parent_permanent_addition_flows_down(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.smkdir("/fp/food", "banana")
        assert names(populated, "/fp/food") == set()
        populated.symlink("/notes/recipe.txt", "/fp/recipe.txt")
        assert names(populated, "/fp/food") == {"recipe.txt"}

    def test_trigger2_moving_semantic_dir_changes_scope(self, populated):
        """§2.3 trigger 2: the directory moves somewhere else."""
        populated.smkdir("/fp", "fingerprint")          # scope: everything
        populated.smkdir("/fp/any", "alice OR lunch")   # within fp: msg1
        assert names(populated, "/fp/any") == {"msg1.txt"}
        populated.rename("/fp/any", "/any")             # scope: root now
        assert names(populated, "/any") == {"msg1.txt", "msg2.txt"}

    def test_move_under_other_semantic_dir(self, populated):
        populated.smkdir("/food", "recipe OR banana")
        populated.smkdir("/q", "walnuts OR sensor")
        assert names(populated, "/q") == {"recipe.txt", "msg1.txt"}
        populated.rename("/q", "/food/q")
        assert names(populated, "/food/q") == {"recipe.txt"}

    def test_trigger3_grandparent_scope_change_cascades(self, populated):
        """§2.3 trigger 3: a change in the scope of the parent itself."""
        populated.smkdir("/a", "fingerprint")
        populated.smkdir("/a/b", "fingerprint")
        populated.smkdir("/a/b/c", "alice")
        assert names(populated, "/a/b/c") == {"msg1.txt"}
        populated.unlink("/a/msg1.txt")  # changes scope of /a/b, then /a/b/c
        assert names(populated, "/a/b") == {"fp-design.txt", "match.c"}
        assert names(populated, "/a/b/c") == set()

    def test_trigger4_query_change(self, populated):
        """§2.3 trigger 4: the query itself changes."""
        populated.smkdir("/fp", "fingerprint")
        populated.smkdir("/fp/x", "alice")
        populated.set_query("/fp", "lunch")
        # parent result changed entirely; the child refines the new result
        assert names(populated, "/fp") == {"msg2.txt"}
        assert names(populated, "/fp/x") == set()

    def test_permanent_in_child_may_exceed_parent_scope(self, populated):
        """The paper's own argument for parent->child refinement: users may
        link a file into a child even when the parent's scope lacks it."""
        populated.smkdir("/fp", "fingerprint")
        populated.smkdir("/fp/misc", "sensor")
        populated.symlink("/notes/recipe.txt", "/fp/misc/recipe.txt")
        populated.ssync("/")
        assert "recipe.txt" in names(populated, "/fp/misc")
        # and it did NOT leak upward into the parent
        assert "recipe.txt" not in names(populated, "/fp")


class TestAlgorithmGuarantees:
    def test_invariant_clause1_transient_subset_of_parent_scope(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.smkdir("/fp/sub", "sensor OR recipe")
        parent_scope = populated.scopes.provided("/fp")
        uid = populated.dirmap.uid_of("/fp/sub")
        state = populated.meta.require(uid)
        for target in state.links.transient.values():
            doc = populated.engine.doc_id_of(target.key)
            assert doc in parent_scope.local

    def test_invariant_clause2_completeness(self, populated):
        """Every matching in-scope file is linked unless prohibited."""
        populated.smkdir("/fp", "fingerprint")
        assert names(populated, "/fp") == {"fp-design.txt", "msg1.txt", "match.c"}

    def test_reevaluation_topological_single_visit(self, populated):
        populated.smkdir("/a", "fingerprint")
        populated.smkdir("/a/b", "sensor OR minutiae OR fingerprint")
        populated.smkdir("/a/b/c", "alice")
        populated.counters.reset()
        populated.unlink("/a/msg1.txt")
        # /a itself plus its two dependents, each exactly once
        assert populated.counters.get("consistency.reevaluations") == 3

    def test_result_cache_updated(self, populated):
        populated.smkdir("/fp", "fingerprint")
        uid = populated.dirmap.uid_of("/fp")
        state = populated.meta.require(uid)
        assert len(state.result_cache) == 3
        populated.unlink("/fp/msg1.txt")
        state = populated.meta.require(uid)
        assert len(state.result_cache) == 2

    def test_plain_dirs_not_reevaluated(self, populated):
        populated.mkdir("/plain")
        populated.counters.reset()
        populated.ssync("/")
        # full pass touches only semantic dirs; none exist
        assert populated.counters.get("consistency.reevaluations") == 0


class TestDirRefQueries:
    def test_ref_to_semantic_dir(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.smkdir("/combo", "lunch OR /fp")
        assert names(populated, "/combo") == {
            "msg1.txt", "msg2.txt", "fp-design.txt", "match.c"}

    def test_ref_to_syntactic_dir(self, populated):
        populated.smkdir("/q", "fingerprint AND /mail")
        assert names(populated, "/q") == {"msg1.txt"}

    def test_ref_update_cascades_outside_subtree(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.smkdir("/watch", "/fp AND alice")
        assert names(populated, "/watch") == {"msg1.txt"}
        populated.unlink("/fp/msg1.txt")   # /watch is not under /fp
        assert names(populated, "/watch") == set()

    def test_rename_of_referenced_dir_keeps_query_valid(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.smkdir("/watch", "/fp AND alice")
        populated.rename("/fp", "/prints")
        assert populated.get_query("/watch") == "/prints AND alice"
        assert names(populated, "/watch") == {"msg1.txt"}

    def test_cycle_rejected_and_state_intact(self, populated):
        from repro.errors import DependencyCycle

        populated.smkdir("/a2", "fingerprint")
        populated.smkdir("/b2", "/a2 AND alice")
        with pytest.raises(DependencyCycle):
            populated.set_query("/a2", "fingerprint AND /b2")
        assert populated.get_query("/a2") == "fingerprint"
        assert names(populated, "/b2") == {"msg1.txt"}

    def test_removed_referenced_dir_resolves_empty(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.smkdir("/watch", "/fp")
        for name in list(populated.links("/fp")):
            populated.unlink(f"/fp/{name}")
        populated.set_query("/fp", None)
        populated.rmdir("/fp")
        populated.ssync("/")
        assert names(populated, "/watch") == set()

    def test_unknown_path_in_query_rejected(self, populated):
        from repro.errors import UnknownDirectoryReference

        with pytest.raises(UnknownDirectoryReference):
            populated.smkdir("/bad", "/no/such/dir")
        # smkdir is journaled: the failed operation is rolled back whole,
        # so the directory it created on the way is gone again
        assert not populated.exists("/bad")
        assert not any(f.severity == "error" for f in populated.fsck())
