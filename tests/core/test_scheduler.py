"""Unit tests for the maintenance scheduler (the write-side pipeline)."""

import pytest

from repro.core.hacfs import HacFileSystem


@pytest.fixture
def watched(populated):
    """The populated world with /mail watched (eager mode, the default)."""
    populated.watch("/mail")
    return populated


def batched(hac: HacFileSystem) -> HacFileSystem:
    hac.maintenance.set_mode("batched")
    return hac


def doc_key(hac, path):
    res = hac.fs.resolve(path, follow=False)
    return (res.fs.fsid, res.node.ino)


class TestModes:
    def test_default_is_eager_and_drains_per_event(self, watched):
        watched.write_file("/mail/msg3.txt", b"fresh fingerprint lead\n")
        assert watched.maintenance.pending == 0
        assert doc_key(watched, "/mail/msg3.txt") in watched.engine

    def test_batched_defers_until_drain(self, watched):
        hac = batched(watched)
        hac.write_file("/mail/msg3.txt", b"fresh fingerprint lead\n")
        key = doc_key(hac, "/mail/msg3.txt")
        assert hac.maintenance.pending == 1
        assert key not in hac.engine
        hac.maintenance.drain()
        assert hac.maintenance.pending == 0
        assert key in hac.engine

    def test_unknown_mode_rejected(self, hacfs):
        with pytest.raises(ValueError):
            hacfs.maintenance.set_mode("lazy")

    def test_leaving_batched_drains(self, watched):
        hac = batched(watched)
        hac.write_file("/mail/msg3.txt", b"stragglers forbidden\n")
        hac.maintenance.set_mode("eager")
        assert hac.maintenance.pending == 0
        assert doc_key(hac, "/mail/msg3.txt") in hac.engine


class TestCoalescing:
    def test_rapid_rewrites_cost_one_tokenisation(self, watched):
        hac = batched(watched)
        before = hac.counters.get("engine.tokenisations")
        for i in range(5):
            hac.clock.tick()
            hac.write_file("/mail/msg3.txt", b"draft %d fingerprint\n" % i)
        assert hac.maintenance.pending == 1
        assert hac.counters.get("engine.tokenisations") == before
        hac.maintenance.drain()
        assert hac.counters.get("engine.tokenisations") == before + 1
        assert hac.counters.get("sched.coalesced") >= 4

    def test_last_write_wins(self, watched):
        hac = batched(watched)
        hac.write_file("/mail/msg3.txt", b"first draft banana\n")
        hac.clock.tick()
        hac.write_file("/mail/msg3.txt", b"final draft fingerprint\n")
        hac.maintenance.drain()
        doc = hac.engine.doc_by_key(doc_key(hac, "/mail/msg3.txt"))
        assert doc.mtime == hac.fs.resolve("/mail/msg3.txt").node.attrs.mtime

    def test_write_then_remove_nets_out(self, watched):
        hac = batched(watched)
        hac.write_file("/mail/msg3.txt", b"ephemeral fingerprint\n")
        key = doc_key(hac, "/mail/msg3.txt")
        hac.unlink("/mail/msg3.txt")
        hac.maintenance.drain()
        assert key not in hac.engine

    def test_remove_then_rewrite_burns_a_doc_id_like_eager(self, watched):
        """An indexed doc removed and replaced gets a fresh id, exactly as
        the eager remove-then-index sequence would assign."""
        hac = batched(watched)
        old_id = hac.engine.doc_id_of(doc_key(hac, "/mail/msg2.txt"))
        hac.unlink("/mail/msg2.txt")
        hac.write_file("/mail/msg2.txt", b"replacement lunch plan\n")
        hac.maintenance.drain()
        new_id = hac.engine.doc_id_of(doc_key(hac, "/mail/msg2.txt"))
        assert new_id is not None and new_id != old_id


class TestPolicyTriggers:
    def test_max_pending_threshold_drains(self, watched):
        hac = batched(watched)
        hac.maintenance.max_pending = 3
        for i in range(3):
            hac.write_file(f"/mail/bulk{i}.txt", b"bulk mail %d\n" % i)
        assert hac.maintenance.pending == 0
        assert hac.counters.get("sched.drains") >= 1

    def test_op_budget_threshold_drains(self, watched):
        hac = batched(watched)
        hac.maintenance.op_budget = 4
        for i in range(4):
            hac.clock.tick()
            hac.write_file("/mail/hot.txt", b"revision %d\n" % i)
        assert hac.maintenance.pending == 0

    def test_backpressure_drains_inline_never_drops(self, watched):
        hac = batched(watched)
        hac.maintenance.max_pending = 10 ** 9
        hac.maintenance.op_budget = 10 ** 9
        hac.maintenance.capacity = 2
        for i in range(5):
            hac.write_file(f"/mail/flood{i}.txt", b"flood %d\n" % i)
        assert hac.counters.get("sched.backpressure") >= 1
        hac.maintenance.drain()
        for i in range(5):
            assert doc_key(hac, f"/mail/flood{i}.txt") in hac.engine

    def test_barrier_is_noop_when_nothing_pending(self, watched):
        before = watched.counters.get("sched.drains")
        assert watched.maintenance.barrier() == 0
        assert watched.counters.get("sched.drains") == before

    def test_queries_drain_first(self, watched):
        """The pre-query barrier: a semantic directory re-evaluation never
        sees a torn batch."""
        hac = batched(watched)
        hac.smkdir("/lunchdir", "lunch")
        hac.write_file("/mail/msg9.txt", b"second lunch invitation\n")
        assert hac.maintenance.pending > 0
        hac.clock.tick()
        hac.ssync("/")
        assert hac.maintenance.pending == 0
        assert "msg9.txt" in hac.links("/lunchdir")


class TestFailureAndRecovery:
    def test_failed_drain_requeues_and_retry_converges(self, watched,
                                                       monkeypatch):
        hac = batched(watched)
        hac.write_file("/mail/msg3.txt", b"transient trouble fingerprint\n")
        key = doc_key(hac, "/mail/msg3.txt")

        def boom(*args, **kwargs):
            raise OSError("ENOSPC")

        monkeypatch.setattr(hac.engine, "index_document", boom)
        with pytest.raises(OSError):
            hac.maintenance.drain()
        assert hac.maintenance.pending == 1
        assert hac.counters.get("sched.requeues") == 1
        monkeypatch.undo()
        hac.maintenance.drain()
        assert key in hac.engine

    def test_group_commit_is_one_journal_intent(self, watched):
        hac = batched(watched)
        begins = hac.counters.get("journal.begins")
        for i in range(6):
            hac.write_file(f"/mail/batch{i}.txt", b"grouped %d\n" % i)
        hac.maintenance.drain()
        assert hac.counters.get("journal.begins") == begins + 1


class TestAsyncSync:
    def test_request_sync_queues_in_batched_mode(self, watched):
        hac = batched(watched)
        assert hac.maintenance.request_sync("/") is True
        assert hac.maintenance.status()["pending_syncs"] == 1
        hac.maintenance.drain()
        assert hac.maintenance.status()["pending_syncs"] == 0

    def test_request_sync_declines_in_eager_mode(self, watched):
        assert watched.maintenance.request_sync("/") is False

    def test_queued_sync_settles_unwatched_changes(self, populated):
        """An async sync queued behind a batch settles files *outside* any
        watch when the drain runs."""
        hac = batched(populated)
        hac.clock.tick()
        hac.write_file("/notes/late.txt", b"late fingerprint addendum\n")
        hac.maintenance.request_sync("/")
        assert doc_key(hac, "/notes/late.txt") not in hac.engine
        hac.maintenance.drain()
        assert doc_key(hac, "/notes/late.txt") in hac.engine


class TestStatus:
    def test_status_shape(self, watched):
        hac = batched(watched)
        hac.write_file("/mail/msg3.txt", b"status check\n")
        status = hac.maintenance.status()
        assert status["mode"] == "batched"
        assert status["pending"] == 1
        assert status["events"] >= 1
        for field in ("pending_syncs", "max_pending", "op_budget",
                      "capacity", "coalesced", "drains", "drained_docs",
                      "backpressure"):
            assert field in status

    def test_drain_emits_spans_and_histograms(self, watched):
        hac = batched(watched)
        hac.obs.enable()
        hac.write_file("/mail/msg3.txt", b"observable fingerprint\n")
        hac.maintenance.drain()
        drains = hac.obs.trace.spans(name="sched.drain")
        applies = hac.obs.trace.spans(name="sched.apply")
        assert drains and drains[-1].attrs["docs"] == 1
        assert applies and applies[-1].attrs["shard"] == "local"
        assert hac.obs.metrics.histogram("sched.batch_docs") is not None


class TestFairShare:
    """Weighted round-robin drain over per-tenant buckets."""

    @pytest.fixture
    def two_tenants(self, hacfs):
        from repro.core.quota import QuotaSpec

        hac = batched(hacfs)
        heavy = hac.tenants.create("heavy", quota=QuotaSpec(weight=3))
        light = hac.tenants.create("light", quota=QuotaSpec(weight=1))
        return hac, heavy, light

    def _fill(self, heavy, light, n_heavy=6, n_light=2):
        for i in range(n_heavy):
            heavy.write_file(f"/h{i}.txt", b"heavy fingerprint %d" % i)
        for i in range(n_light):
            light.write_file(f"/l{i}.txt", b"light fingerprint %d" % i)

    def test_wrr_interleaves_by_weight(self, two_tenants):
        hac, heavy, light = two_tenants
        self._fill(heavy, light)
        sched = hac.maintenance
        order = [e.tenant for e in
                 sched._fair_order(list(sched._pending.values()))]
        # 3:1 interleave: three heavy entries, then light gets a turn
        assert order[:4] == ["heavy", "heavy", "heavy", "light"]
        assert order[4:8] == ["heavy", "heavy", "heavy", "light"]

    def test_single_bucket_keeps_arrival_order(self, two_tenants):
        hac, heavy, _light = two_tenants
        for i in range(4):
            heavy.write_file(f"/h{i}.txt", b"solo fingerprint %d" % i)
        sched = hac.maintenance
        entries = list(sched._pending.values())
        assert sched._fair_order(entries) == entries

    def test_shared_namespace_drains_last_in_the_round(self, two_tenants):
        hac, heavy, light = two_tenants
        hac.watch("/")
        hac.makedirs("/shared")
        hac.write_file("/shared/host.txt", b"host fingerprint")
        self._fill(heavy, light, n_heavy=1, n_light=1)
        sched = hac.maintenance
        order = [e.tenant for e in
                 sched._fair_order(list(sched._pending.values()))]
        assert order == ["heavy", "light", None]

    def test_tenant_barrier_leaves_other_buckets(self, two_tenants):
        hac, heavy, light = two_tenants
        self._fill(heavy, light, n_heavy=3, n_light=2)
        drained = hac.maintenance.barrier(tenant="light")
        assert drained == 2
        assert hac.maintenance.pending_by_tenant() == {"heavy": 3}
        assert light.glimpse("fingerprint", consistency="strong")

    def test_tenant_barrier_with_empty_bucket_is_free(self, two_tenants):
        hac, heavy, light = two_tenants
        self._fill(heavy, light, n_heavy=3, n_light=0)
        before = hac.counters.get("sched.drains")
        assert hac.maintenance.barrier(tenant="light") == 0
        assert hac.counters.get("sched.drains") == before
        assert hac.maintenance.pending == 3

    def test_full_drain_still_takes_everything(self, two_tenants):
        hac, heavy, light = two_tenants
        self._fill(heavy, light)
        assert hac.maintenance.drain() == 8
        assert hac.maintenance.pending_by_tenant() == {}

    def test_status_grows_a_tenants_key_only_with_tenants(self, hacfs):
        hac = batched(hacfs)
        assert "tenants" not in hac.maintenance.status()
        t = hac.tenants.create("solo")
        t.write_file("/f.txt", b"fingerprint")
        assert hac.maintenance.status()["tenants"] == {"solo": 1}
