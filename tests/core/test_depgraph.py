"""Unit tests for the dependency DAG (§2.5)."""

import pytest

from repro.errors import DependencyCycle
from repro.core.depgraph import ROOT_UID, DependencyGraph


@pytest.fixture
def graph():
    g = DependencyGraph()
    for uid in (1, 2, 3, 4):
        g.add_node(uid)
    # hierarchy: 1 and 2 under root, 3 under 1, 4 under 3
    g.set_hierarchy_edge(1, ROOT_UID)
    g.set_hierarchy_edge(2, ROOT_UID)
    g.set_hierarchy_edge(3, 1)
    g.set_hierarchy_edge(4, 3)
    return g


class TestStructure:
    def test_nodes(self, graph):
        assert set(graph.nodes()) == {ROOT_UID, 1, 2, 3, 4}
        assert 1 in graph and 99 not in graph

    def test_duplicate_node_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.add_node(1)

    def test_hierarchy_parent(self, graph):
        assert graph.hierarchy_parent(3) == 1
        assert graph.hierarchy_parent(1) == ROOT_UID
        assert graph.hierarchy_parent(ROOT_UID) is None

    def test_reparent_replaces_hierarchy_edge(self, graph):
        graph.set_hierarchy_edge(3, 2)
        assert graph.hierarchy_parent(3) == 2
        assert 3 not in graph.dependents_of(1)
        assert 3 in graph.dependents_of(2)

    def test_reference_edges_replace(self, graph):
        graph.set_reference_edges(2, [3])
        assert graph.providers_of(2) == {ROOT_UID: "hierarchy", 3: "reference"}
        graph.set_reference_edges(2, [4])
        assert 3 not in graph.providers_of(2)
        assert 4 in graph.providers_of(2)
        graph.set_reference_edges(2, [])
        assert graph.providers_of(2) == {ROOT_UID: "hierarchy"}

    def test_reference_to_root_implicit(self, graph):
        graph.set_reference_edges(2, [ROOT_UID])
        assert graph.providers_of(2) == {ROOT_UID: "hierarchy"}

    def test_dangling_reference_tolerated(self, graph):
        graph.set_reference_edges(2, [999])
        assert 999 not in graph.providers_of(2)

    def test_remove_node_cleans_edges(self, graph):
        graph.set_reference_edges(2, [3])
        graph.remove_node(3)
        assert 3 not in graph
        assert 3 not in graph.providers_of(2)
        assert 3 not in graph.dependents_of(1)
        # 4's hierarchy provider vanished with node 3
        assert graph.hierarchy_parent(4) is None

    def test_remove_root_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.remove_node(ROOT_UID)


class TestCycles:
    def test_self_reference_rejected(self, graph):
        with pytest.raises(DependencyCycle):
            graph.set_reference_edges(1, [1])

    def test_direct_cycle_rejected(self, graph):
        graph.set_reference_edges(2, [3])
        with pytest.raises(DependencyCycle):
            graph.set_reference_edges(3, [2])

    def test_transitive_cycle_rejected(self, graph):
        # 4 depends on 3 depends on 1 (hierarchy); 1 -> ref 4 would cycle
        with pytest.raises(DependencyCycle):
            graph.set_reference_edges(1, [4])

    def test_hierarchy_cycle_rejected(self, graph):
        with pytest.raises(DependencyCycle):
            graph.set_hierarchy_edge(1, 4)
        with pytest.raises(DependencyCycle):
            graph.set_hierarchy_edge(1, 1)

    def test_failed_reference_update_leaves_graph_intact(self, graph):
        graph.set_reference_edges(2, [3])
        with pytest.raises(DependencyCycle):
            graph.set_reference_edges(3, [4, 2])  # 2 would cycle
        # the old edges survive untouched
        assert graph.providers_of(2) == {ROOT_UID: "hierarchy", 3: "reference"}
        assert 4 not in graph.providers_of(3)

    def test_diamond_is_fine(self, graph):
        # 2 references 3 and 4 (which already share ancestry through 1)
        graph.set_reference_edges(2, [3, 4])
        assert set(graph.providers_of(2)) == {ROOT_UID, 3, 4}


class TestOrdering:
    def test_affected_order_descendants(self, graph):
        order = graph.affected_order(1)
        assert order == [3, 4]

    def test_affected_order_include_start(self, graph):
        order = graph.affected_order(1, include_start=True)
        assert order == [1, 3, 4]

    def test_affected_via_reference(self, graph):
        graph.set_reference_edges(2, [4])
        order = graph.affected_order(1, include_start=True)
        # 2 depends on 4 depends on 3 depends on 1
        assert order.index(2) > order.index(4) > order.index(3) > order.index(1)

    def test_root_affects_everything(self, graph):
        assert set(graph.affected_order(ROOT_UID)) == {1, 2, 3, 4}

    def test_full_order_root_first(self, graph):
        order = graph.full_order()
        assert order[0] == ROOT_UID
        assert order.index(3) > order.index(1)
        assert order.index(4) > order.index(3)

    def test_topo_order_subset(self, graph):
        order = graph.topo_order({4, 1, 3, 999})
        assert order == [1, 3, 4]

    def test_leaf_affects_nothing(self, graph):
        assert graph.affected_order(4) == []


class TestPersistence:
    def test_obj_roundtrip(self, graph):
        graph.set_reference_edges(2, [4])
        restored = DependencyGraph.from_obj(graph.to_obj())
        assert restored.providers_of(2) == graph.providers_of(2)
        assert restored.full_order() == graph.full_order()
        assert restored.dependents_of(3) == graph.dependents_of(3)
