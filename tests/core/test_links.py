"""Unit tests for targets and the three-way link classification."""

import pytest

from repro.cba.results import RemoteId
from repro.core.links import LinkSets, Target


class TestTarget:
    def test_local(self):
        t = Target.local("fs#1", 42)
        assert t.is_local and not t.is_remote
        assert t.ino == 42
        assert t.key == ("fs#1", 42)
        assert str(t) == "fs#1:ino42"

    def test_remote(self):
        t = Target.remote("digilib", "paper1")
        assert t.is_remote
        assert t.remote_id() == RemoteId("digilib", "paper1")
        assert str(t) == "digilib://paper1"

    def test_kind_guards(self):
        with pytest.raises(ValueError):
            Target.remote("n", "d").ino
        with pytest.raises(ValueError):
            Target.remote("n", "d").key
        with pytest.raises(ValueError):
            Target.local("f", 1).remote_id()

    def test_obj_roundtrip(self):
        for t in (Target.local("f", 9), Target.remote("n", "d")):
            assert Target.from_obj(t.to_obj()) == t

    def test_from_remote_id(self):
        rid = RemoteId("n", "d")
        assert Target.from_remote_id(rid).remote_id() == rid


@pytest.fixture
def sets():
    ls = LinkSets()
    ls.add_permanent("perm.txt", Target.local("f", 1))
    ls.add_transient("trans.txt", Target.local("f", 2))
    return ls


class TestLinkSets:
    def test_classify(self, sets):
        assert sets.classify(Target.local("f", 1)) == "permanent"
        assert sets.classify(Target.local("f", 2)) == "transient"
        assert sets.classify(Target.local("f", 9)) is None

    def test_names_and_targets(self, sets):
        assert sets.name_of(Target.local("f", 2)) == "trans.txt"
        assert sets.target_of("perm.txt") == Target.local("f", 1)
        assert sets.target_of("nope") is None
        assert sets.used_names() == {"perm.txt", "trans.txt"}

    def test_all_targets_is_current_result(self, sets):
        assert sets.all_targets() == {Target.local("f", 1), Target.local("f", 2)}

    def test_prohibit_transient(self, sets):
        gone = sets.prohibit("trans.txt")
        assert gone == Target.local("f", 2)
        assert sets.classify(gone) == "prohibited"
        assert "trans.txt" not in sets.used_names()

    def test_prohibit_permanent(self, sets):
        gone = sets.prohibit("perm.txt")
        assert sets.classify(gone) == "prohibited"

    def test_prohibit_unknown_is_none(self, sets):
        assert sets.prohibit("ghost") is None

    def test_readding_by_hand_lifts_prohibition(self, sets):
        gone = sets.prohibit("trans.txt")
        sets.add_permanent("back.txt", gone)
        assert sets.classify(gone) == "permanent"
        assert gone not in sets.prohibited

    def test_unprohibit(self, sets):
        gone = sets.prohibit("trans.txt")
        assert sets.unprohibit(gone) is True
        assert sets.unprohibit(gone) is False
        assert sets.classify(gone) is None

    def test_forget_does_not_prohibit(self, sets):
        gone = sets.forget("trans.txt")
        assert gone == Target.local("f", 2)
        assert sets.classify(gone) is None

    def test_clear_transient(self, sets):
        sets.clear_transient()
        assert not sets.transient
        assert sets.permanent  # untouched

    def test_obj_roundtrip(self, sets):
        sets.prohibit("perm.txt")
        sets.add_transient("r", Target.remote("n", "d"))
        restored = LinkSets.from_obj(sets.to_obj())
        assert restored.permanent == sets.permanent
        assert restored.transient == sets.transient
        assert restored.prohibited == sets.prohibited

    def test_repr(self, sets):
        assert "permanent=1" in repr(sets)
