"""Semantic directory behaviour: the §2.3 link classification in action."""

import pytest

from repro.errors import FileNotFound, InvalidArgument, NotASemanticDirectory


class TestSmkdir:
    def test_creates_transient_links(self, populated):
        populated.smkdir("/fp", "fingerprint")
        links = populated.links("/fp")
        assert set(links) == {"fp-design.txt", "msg1.txt", "match.c"}
        assert all(cls == "transient" for cls, _t in links.values())

    def test_links_are_real_symlinks(self, populated):
        populated.smkdir("/fp", "fingerprint")
        assert populated.islink("/fp/fp-design.txt")
        assert populated.readlink("/fp/fp-design.txt") == "/notes/fp-design.txt"
        assert populated.read_file("/fp/fp-design.txt").startswith(b"design notes")

    def test_is_semantic_and_query(self, populated):
        populated.smkdir("/fp", "fingerprint")
        assert populated.is_semantic("/fp")
        assert not populated.is_semantic("/notes")
        assert populated.get_query("/fp") == "fingerprint"
        assert populated.get_query("/notes") is None

    def test_empty_result_query(self, populated):
        populated.smkdir("/none", "zzzznothing")
        assert populated.listdir("/none") == []

    def test_boolean_query(self, populated):
        populated.smkdir("/q", "fingerprint AND NOT minutiae")
        assert set(populated.links("/q")) == {"msg1.txt"}

    def test_name_collision_gets_suffix(self, populated):
        populated.write_file("/other/msg1.txt".replace("/other", "/notes"),
                             b"another fingerprint msg1")
        populated.clock.tick()
        populated.ssync("/")
        populated.smkdir("/fp", "fingerprint")
        names = set(populated.links("/fp"))
        assert "msg1.txt" in names and "msg1.txt~2" in names


class TestProhibition:
    def test_rm_link_prohibits(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.unlink("/fp/msg1.txt")
        assert "msg1.txt" not in populated.listdir("/fp")
        assert populated.prohibited("/fp")

    def test_prohibited_not_readded_on_sync(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.unlink("/fp/msg1.txt")
        populated.ssync("/")
        populated.ssync("/")
        assert "msg1.txt" not in populated.listdir("/fp")

    def test_prohibition_survives_query_change(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.unlink("/fp/msg1.txt")
        populated.set_query("/fp", "fingerprint OR lunch")
        assert "msg1.txt" not in populated.listdir("/fp")
        assert "msg2.txt" in populated.listdir("/fp")

    def test_manual_readd_lifts_prohibition(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.unlink("/fp/msg1.txt")
        populated.symlink("/mail/msg1.txt", "/fp/msg1.txt")
        assert not populated.prohibited("/fp")
        assert populated.classify("/fp/msg1.txt") == "permanent"
        populated.ssync("/")
        assert "msg1.txt" in populated.listdir("/fp")

    def test_unprohibit_api(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.unlink("/fp/msg1.txt")
        assert populated.unprohibit("/fp", "/mail/msg1.txt") is True
        assert "msg1.txt" in populated.listdir("/fp")
        assert populated.unprohibit("/fp", "/mail/msg1.txt") is False

    def test_prohibition_tracks_inode_across_rename(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.unlink("/fp/msg1.txt")
        populated.rename("/mail/msg1.txt", "/mail/renamed.txt")
        populated.clock.tick()
        populated.ssync("/")
        # the same file (same inode) stays prohibited under its new name
        assert "renamed.txt" not in populated.listdir("/fp")


class TestPermanentLinks:
    def test_symlink_into_semantic_dir_is_permanent(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.symlink("/notes/recipe.txt", "/fp/recipe.txt")
        assert populated.classify("/fp/recipe.txt") == "permanent"

    def test_permanent_survives_reevaluation(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.symlink("/notes/recipe.txt", "/fp/recipe.txt")
        populated.ssync("/")
        assert "recipe.txt" in populated.listdir("/fp")
        assert populated.classify("/fp/recipe.txt") == "permanent"

    def test_permanent_survives_query_change(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.symlink("/notes/recipe.txt", "/fp/recipe.txt")
        populated.set_query("/fp", "minutiae")
        assert "recipe.txt" in populated.listdir("/fp")

    def test_make_permanent_promotes_transient(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.make_permanent("/fp/msg1.txt")
        assert populated.classify("/fp/msg1.txt") == "permanent"
        # now even a disjoint query keeps it
        populated.set_query("/fp", "zzz")
        assert populated.listdir("/fp") == ["msg1.txt"]

    def test_make_permanent_requires_transient(self, populated):
        populated.smkdir("/fp", "fingerprint")
        with pytest.raises(InvalidArgument):
            populated.make_permanent("/fp/nope.txt")

    def test_dangling_symlink_not_tracked(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.symlink("/gone", "/fp/dangle")
        assert populated.classify("/fp/dangle") is None


class TestQueryChanges:
    def test_set_query_reevaluates(self, populated):
        populated.smkdir("/q", "lunch")
        assert set(populated.links("/q")) == {"msg2.txt"}
        populated.set_query("/q", "recipe")
        assert set(populated.links("/q")) == {"recipe.txt"}

    def test_detach_query_removes_transient_keeps_permanent(self, populated):
        populated.smkdir("/q", "fingerprint")
        populated.symlink("/notes/recipe.txt", "/q/recipe.txt")
        populated.set_query("/q", None)
        assert populated.listdir("/q") == ["recipe.txt"]
        assert not populated.is_semantic("/q")
        assert populated.get_query("/q") is None

    def test_attach_query_to_plain_dir(self, populated):
        populated.mkdir("/plain")
        populated.set_query("/plain", "lunch")
        assert populated.is_semantic("/plain")
        assert set(populated.links("/plain")) == {"msg2.txt"}


class TestSact:
    def test_sact_returns_matching_lines(self, populated):
        populated.smkdir("/fp", "fingerprint")
        lines = populated.sact("/fp/msg1.txt")
        assert lines == ["Subject: fingerprint sensor",
                         "the fingerprint sensor prototype works"]

    def test_sact_on_permanent_link(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.symlink("/notes/recipe.txt", "/fp/recipe.txt")
        # recipe has no "fingerprint" line; sact yields nothing
        assert populated.sact("/fp/recipe.txt") == []

    def test_sact_outside_semantic_dir_fails(self, populated):
        populated.symlink("/mail/msg1.txt", "/notes/link")
        with pytest.raises(NotASemanticDirectory):
            populated.sact("/notes/link")

    def test_sact_untracked_entry_fails(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.write_file("/fp/plain.txt", b"a plain file")
        with pytest.raises(FileNotFound):
            populated.sact("/fp/plain.txt")
