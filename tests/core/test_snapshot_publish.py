"""Publish integration: scheduler, journal correlation, and health.

The serving tier's write-side discipline is *publish after commit*: a
drain publishes its new snapshot version only once the ``sched_batch``
intent has committed (a rollback must never retract ops already shipped
to replicas), and the ``journal.sched_publish`` event carries that
intent's seq as its op id — extending PR 3's trace <-> journal
bidirectional correlation to snapshot publishes.
"""

import pytest


@pytest.fixture
def watched(populated):
    populated.watch("/mail")
    populated.maintenance.set_mode("batched")
    populated.obs.enable()
    return populated


class TestSchedulerPublish:
    def test_drain_publishes_exactly_once(self, watched):
        before = watched.engine.snapshot_info()["version"]
        watched.clock.tick()
        watched.write_file("/mail/msg3.txt", b"fresh fingerprint lead\n")
        watched.write_file("/mail/msg4.txt", b"second lead\n")
        watched.maintenance.drain()
        assert watched.engine.snapshot_info()["version"] == before + 1

    def test_forced_publish_skips_the_drain(self, watched):
        watched.clock.tick()
        watched.write_file("/mail/msg3.txt", b"pending still\n")
        drains = watched.counters.get("sched.drains")
        version = watched.maintenance.publish()
        assert watched.maintenance.pending == 1
        assert watched.counters.get("sched.drains") == drains
        assert watched.counters.get("sched.forced_publishes") == 1
        assert watched.engine.snapshot_info()["version"] == version

    def test_status_reports_serving_state(self, watched):
        watched.engine.attach_replica("r0", lag=1)
        watched.clock.tick()
        watched.write_file("/mail/msg3.txt", b"fresh fingerprint lead\n")
        watched.maintenance.drain()
        status = watched.maintenance.status()
        assert status["snapshot_version"] == \
            watched.engine.snapshot_info()["version"]
        assert status["publishes"] >= 1
        assert status["replica_lag"] == {"r0": 1}  # it skipped one publish
        watched.maintenance.drain()  # nothing pending: no new version
        assert watched.maintenance.status()["snapshot_version"] == \
            status["snapshot_version"]

    def test_health_exposes_snapshots(self, watched):
        snapshots = watched.health()["snapshots"]
        assert snapshots == watched.engine.snapshot_info()


class TestJournalCorrelation:
    def test_publish_event_correlates_to_the_batch_intent(self, watched):
        """Bidirectional check: the ``journal.sched_publish`` event's op id
        is the committed ``sched_batch`` intent's seq, which in turn stamps
        the drain's root span — one chain from version to group commit."""
        trace = watched.obs.trace
        watched.clock.tick()
        watched.write_file("/mail/msg3.txt", b"fresh fingerprint lead\n")
        watched.maintenance.drain()

        events = trace.spans(name="journal.sched_publish")
        assert len(events) >= 1
        event = events[-1]
        assert event.attrs["version"] == \
            watched.engine.snapshot_info()["version"]
        assert event.op_id is not None
        begins = [s for s in trace.spans(name="journal.begin")
                  if s.op_id == event.op_id]
        assert len(begins) == 1
        roots = [s for s in trace.spans(op_id=event.op_id)
                 if s.parent_id is None]
        assert len(roots) == 1 and roots[0].name == "sched.drain"

    def test_forced_publish_event_has_no_intent(self, watched):
        """No batch committed, so there is no seq to correlate — the event
        must say so (op id None) rather than borrow a stale one."""
        watched.clock.tick()
        watched.write_file("/mail/msg3.txt", b"uncommitted\n")
        watched.maintenance.publish()
        event = watched.obs.trace.spans(name="journal.sched_publish")[-1]
        assert event.op_id is None

    def test_empty_drain_does_not_reuse_a_stale_seq(self, watched):
        """A drain that applies no batch (only queued syncs) publishes with
        op id None — never the previous batch's seq."""
        trace = watched.obs.trace
        watched.clock.tick()
        watched.write_file("/mail/msg3.txt", b"first batch\n")
        watched.maintenance.drain()
        first = trace.spans(name="journal.sched_publish")[-1]
        assert first.op_id is not None
        watched.maintenance.request_sync("/mail")
        watched.maintenance.drain()
        second = trace.spans(name="journal.sched_publish")[-1]
        assert second.span_id != first.span_id
        assert second.op_id is None

    def test_journal_counts_publishes(self, watched):
        before = watched.counters.get("journal.publishes")
        watched.maintenance.publish()
        assert watched.counters.get("journal.publishes") == before + 1
