"""Unit tests for per-directory state and the MetaStore."""

import pytest

from repro.cba.queryparser import parse_query
from repro.core.links import Target
from repro.core.semdir import MetaStore, SemanticDirState
from repro.util.bitmap import Bitmap
from repro.vfs.blockdev import BlockDevice


class TestState:
    def test_fresh_state_is_plain(self):
        state = SemanticDirState(uid=5)
        assert not state.is_semantic
        assert state.query is None
        assert not state.links.all_targets()

    def test_becomes_semantic_with_query(self):
        state = SemanticDirState(uid=5)
        state.query = parse_query("fingerprint")
        assert state.is_semantic

    def test_obj_roundtrip(self):
        state = SemanticDirState(uid=5)
        state.query = parse_query("a AND NOT b")
        state.query_text = "a AND NOT b"
        state.links.add_permanent("p", Target.local("f", 1))
        state.links.add_transient("t", Target.remote("n", "d"))
        state.links.prohibit("t")
        state.result_cache = Bitmap([3, 99])
        restored = SemanticDirState.from_obj(state.to_obj())
        assert restored.uid == 5
        assert restored.query == state.query
        assert restored.query_text == "a AND NOT b"
        assert restored.links.permanent == state.links.permanent
        assert restored.links.prohibited == state.links.prohibited
        assert restored.result_cache == state.result_cache

    def test_plain_state_roundtrip(self):
        state = SemanticDirState(uid=1)
        restored = SemanticDirState.from_obj(state.to_obj())
        assert not restored.is_semantic

    def test_repr(self):
        assert "plain" in repr(SemanticDirState(uid=1))


@pytest.fixture
def store():
    return MetaStore(BlockDevice())


class TestMetaStore:
    def test_create_get_require(self, store):
        state = store.create(7)
        assert store.get(7) is state
        assert store.require(7) is state
        assert store.get(8) is None
        with pytest.raises(KeyError):
            store.require(8)

    def test_duplicate_create_rejected(self, store):
        store.create(7)
        with pytest.raises(ValueError):
            store.create(7)

    def test_create_persists_immediately(self, store):
        store.create(7)
        assert "semdir:7" in store.device.record_keys()
        assert store.metadata_bytes() > 0

    def test_drop(self, store):
        store.create(7)
        store.drop(7)
        assert store.get(7) is None
        assert "semdir:7" not in store.device.record_keys()
        store.drop(7)  # idempotent

    def test_flush_writes_current_state(self, store):
        state = store.create(7)
        state.query = parse_query("x")
        state.query_text = "x"
        store.flush(7)
        store.reload_all()
        assert store.require(7).query_text == "x"

    def test_reload_all_rebuilds_everything(self, store):
        for uid in (1, 2, 3):
            state = store.create(uid)
            state.links.add_permanent(f"n{uid}", Target.local("f", uid))
            store.flush(uid)
        store.reload_all()
        assert len(store) == 3
        assert store.require(2).links.target_of("n2") == Target.local("f", 2)

    def test_aux_records(self, store):
        store.flush_aux("globalmap", {"0": "/"})
        assert store.load_aux("globalmap") == {"0": "/"}
        assert store.load_aux("absent") is None

    def test_metadata_bytes_tracks_store(self, store):
        before = store.metadata_bytes()
        store.create(1)
        assert store.metadata_bytes() > before

    def test_uids_and_contains(self, store):
        store.create(3)
        assert list(store.uids()) == [3]
        assert 3 in store and 4 not in store
