"""The Tenant facade: namespaces, quotas, attribution, lifecycle."""

import pytest

from repro.errors import (FileNotFound, InvalidArgument, QuotaExceeded,
                          UnknownTenant)
from repro.core.hacfs import HacFileSystem
from repro.core.quota import QuotaSpec, recompute_usage


@pytest.fixture
def hac():
    return HacFileSystem()


@pytest.fixture
def acme(hac):
    return hac.tenants.create("acme", quota=QuotaSpec(
        max_inodes=20, max_bytes=1000, max_docs=10, weight=2))


@pytest.fixture
def buyco(hac):
    return hac.tenants.create("buyco")


class TestLifecycle:
    def test_create_carves_a_scope_root(self, hac, acme):
        assert acme.root == "/tenants/acme"
        assert hac.isdir("/tenants/acme")
        assert hac.tenants.names() == ["acme"]
        assert "acme" in hac.tenants

    def test_names_are_validated(self, hac):
        for bad in ("", "a/b", "..", "UPPER CASE", "/x"):
            with pytest.raises(InvalidArgument):
                hac.tenants.create(bad)

    def test_duplicate_creation_is_rejected(self, hac, acme):
        with pytest.raises(InvalidArgument):
            hac.tenants.create("acme")

    def test_unknown_tenant_raises(self, hac):
        with pytest.raises(UnknownTenant):
            hac.tenants.get("nobody")

    def test_tenant_of_path_prefix_matches(self, hac, acme):
        of = hac.tenants.tenant_of_path
        assert of("/tenants/acme") == "acme"
        assert of("/tenants/acme/deep/file.txt") == "acme"
        assert of("/tenants/acmecorp/x") is None   # no partial-name match
        assert of("/notes/a.txt") is None
        assert of("/tenants") is None

    def test_empty_manager_leaves_the_world_untouched(self, hac):
        assert not hac.exists("/tenants")
        assert "tenants" not in hac.maintenance.status()
        assert hac.health()["tenants"] == {}


class TestFacadeOps:
    def test_paths_are_rebased_both_ways(self, hac, acme):
        acme.makedirs("/a/b")
        acme.write_file("/a/b/f.txt", b"fingerprint data")
        assert acme.listdir("/a/b") == ["f.txt"]
        assert acme.read_file("/a/b/f.txt") == b"fingerprint data"
        assert hac.isfile("/tenants/acme/a/b/f.txt")
        assert acme.stat("/a/b/f.txt").is_file

    def test_dotdot_cannot_escape_the_root(self, hac, acme, buyco):
        buyco.write_file("/secret.txt", b"other tenant")
        with pytest.raises(FileNotFound):
            acme.read_file("/../buyco/secret.txt")
        # and the lexical collapse lands inside acme, not above it
        acme.write_file("/x.txt", b"mine")
        assert acme.read_file("/a/../x.txt") == b"mine"

    def test_root_removal_is_blocked(self, acme):
        with pytest.raises(InvalidArgument):
            acme.rmdir("/")

    def test_symlinks_rebase_their_text(self, hac, acme):
        acme.write_file("/t.txt", b"target")
        acme.symlink("/t.txt", "/l")
        assert acme.readlink("/l") == "/t.txt"
        assert hac.readlink("/tenants/acme/l") == "/tenants/acme/t.txt"

    def test_fd_surface_is_scoped(self, acme):
        fd = acme.create_open("/fd.txt") if hasattr(acme, "create_open") \
            else None
        if fd is None:
            acme.create("/fd.txt")
            fd = acme.open("/fd.txt", "w")
        acme.write(fd, b"fingerprint bytes")
        acme.close(fd)
        assert acme.read_file("/fd.txt") == b"fingerprint bytes"


class TestQuotas:
    def test_byte_budget_rejects_before_any_bytes_land(self, hac, acme):
        with pytest.raises(QuotaExceeded) as exc:
            acme.write_file("/big.txt", b"x" * 2000)
        assert exc.value.resource == "bytes"
        assert not hac.exists("/tenants/acme/big.txt")
        assert acme.ledger.usage() == {"inodes": 0, "bytes": 0}

    def test_inode_budget_counts_dirs_and_files(self, hac):
        t = hac.tenants.create("tiny", quota=QuotaSpec(max_inodes=2))
        t.mkdir("/d")
        t.write_file("/d/f.txt", b"ok")
        with pytest.raises(QuotaExceeded):
            t.write_file("/d/g.txt", b"over")
        assert t.ledger.usage()["inodes"] == 2

    def test_rewrites_charge_only_the_delta(self, acme):
        acme.write_file("/f.txt", b"aaaa")
        acme.write_file("/f.txt", b"aa")
        assert acme.ledger.usage() == {"inodes": 1, "bytes": 2}
        acme.write_file("/f.txt", b"aaaaaaaa")
        assert acme.ledger.usage()["bytes"] == 8

    def test_unlink_releases_the_budget(self, acme):
        acme.write_file("/f.txt", b"fingerprint")
        acme.unlink("/f.txt")
        assert acme.ledger.usage() == {"inodes": 0, "bytes": 0}

    def test_doc_budget_gates_new_indexed_files(self, hac):
        t = hac.tenants.create("lib", quota=QuotaSpec(max_docs=2))
        t.write_file("/a.txt", b"fingerprint one")
        t.write_file("/b.txt", b"fingerprint two")
        t.barrier()
        with pytest.raises(QuotaExceeded) as exc:
            t.write_file("/c.txt", b"fingerprint three")
        assert exc.value.resource == "docs"

    def test_recompute_matches_the_charged_ledger(self, hac, acme):
        acme.makedirs("/a/b")
        acme.write_file("/a/b/f.txt", b"fingerprint data")
        acme.write_file("/g.txt", b"more")
        assert recompute_usage(hac.fs, acme.root) == acme.ledger.usage()

    def test_recompute_skips_symlinks_like_the_facade(self, hac, acme):
        acme.write_file("/f.txt", b"data")
        acme.symlink("/f.txt", "/l")
        assert recompute_usage(hac.fs, acme.root) == acme.ledger.usage()

    def test_set_quota_keeps_usage(self, hac, acme):
        acme.write_file("/f.txt", b"1234")
        hac.tenants.set_quota("acme", QuotaSpec(max_bytes=4))
        with pytest.raises(QuotaExceeded):
            acme.write_file("/g.txt", b"5")


class TestAttribution:
    def test_journal_intents_carry_the_tenant_id(self, hac, acme,
                                                 monkeypatch):
        opened = []
        orig = hac.journal.begin

        def spy(op, payload):
            intent = orig(op, payload)
            if intent is not None:
                opened.append(intent)
            return intent

        monkeypatch.setattr(hac.journal, "begin", spy)
        acme.write_file("/f.txt", b"fingerprint")
        assert any(i.payload.get("tenant") == "acme" for i in opened), \
            "no journal intent was stamped with the tenant id"

    def test_spans_carry_the_tenant_tag(self, hac, acme):
        hac.obs.trace.enable()
        acme.write_file("/f.txt", b"fingerprint")
        spans = [s for s in hac.obs.trace.spans()
                 if s.name.startswith("tenant.")
                 and s.attrs.get("tenant") == "acme"]
        assert spans

    def test_scheduler_buckets_by_tenant(self, hac, acme, buyco):
        hac.maintenance.set_mode("batched")
        acme.write_file("/a.txt", b"fingerprint a")
        buyco.write_file("/b.txt", b"fingerprint b")
        assert hac.maintenance.pending_by_tenant() == {"acme": 1, "buyco": 1}
        assert hac.maintenance.status()["tenants"] == {"acme": 1, "buyco": 1}

    def test_health_reports_the_tenant_section(self, hac, acme):
        acme.write_file("/f.txt", b"12345")
        row = hac.health()["tenants"]["acme"]
        assert row["root"] == "/tenants/acme"
        assert row["usage"] == {"inodes": 1, "bytes": 5}
        assert row["quota"]["max_bytes"] == 1000

    def test_tenant_health_filters_directories(self, hac, acme, buyco):
        report = acme.health()
        assert report["tenant"]["name"] == "acme"
        assert "buyco" not in str(report.get("directories", {}))


class TestIsolationAndScoping:
    def test_glimpse_sees_only_the_tenant_subtree(self, hac, acme, buyco):
        acme.write_file("/a.txt", b"fingerprint ridges alpha")
        buyco.write_file("/b.txt", b"fingerprint ridges beta")
        hac.makedirs("/shared")
        hac.write_file("/shared/c.txt", b"fingerprint ridges host")
        hac.ssync("/")
        assert acme.glimpse("fingerprint") == ["/a.txt"]
        assert buyco.glimpse("fingerprint") == ["/b.txt"]

    def test_snapshot_glimpse_is_scoped_too(self, hac, acme, buyco):
        acme.write_file("/a.txt", b"fingerprint alpha")
        buyco.write_file("/b.txt", b"fingerprint beta")
        acme.barrier()
        buyco.barrier()
        hac.maintenance.publish()
        assert acme.glimpse("fingerprint",
                            consistency="snapshot") == ["/a.txt"]

    def test_semantic_dirs_link_only_tenant_docs(self, hac, acme, buyco):
        acme.write_file("/a.txt", b"fingerprint ridge alpha")
        buyco.write_file("/b.txt", b"fingerprint ridge beta")
        acme.smkdir("/q", "fingerprint")
        acme.barrier()
        assert sorted(acme.links("/q")) == ["a.txt"]

    def test_cross_tenant_cascades_are_pruned(self, hac, acme, buyco):
        acme.write_file("/a.txt", b"fingerprint alpha")
        buyco.smkdir("/q", "fingerprint")
        buyco.barrier()
        before = hac.counters.get("consistency.reevaluations")
        acme.write_file("/a2.txt", b"fingerprint alpha two")
        acme.barrier()
        assert hac.counters.get("consistency.cross_tenant_skips") >= 1
        # buyco's directory did not re-evaluate on acme's write
        assert hac.counters.get("consistency.reevaluations") == before

    def test_host_semdirs_still_see_tenant_writes(self, hac, acme):
        hac.smkdir("/all", "fingerprint")
        acme.write_file("/a.txt", b"fingerprint alpha")
        acme.barrier()
        hac.ssync("/all")
        assert "a.txt" in hac.links("/all")


class TestRestore:
    def test_tenants_survive_a_reopen(self, hac, acme):
        acme.write_file("/f.txt", b"fingerprint data")
        acme.barrier()
        hac.save_index()
        again = HacFileSystem.restore(hac.fs)
        t = again.tenants.get("acme")
        assert t.ledger.spec.max_bytes == 1000
        assert t.ledger.usage() == {"inodes": 1, "bytes": 16}
        assert t.read_file("/f.txt") == b"fingerprint data"
        assert t.glimpse("fingerprint") == ["/f.txt"]

    def test_restored_tenants_keep_enforcing_quotas(self, hac):
        t = hac.tenants.create("tight", quota=QuotaSpec(max_bytes=10))
        t.write_file("/f.txt", b"123456")
        again = HacFileSystem.restore(hac.fs)
        with pytest.raises(QuotaExceeded):
            again.tenants.get("tight").write_file("/g.txt", b"12345")


class TestFsck:
    def test_clean_world_has_no_tenant_findings(self, hac, acme):
        acme.write_file("/f.txt", b"fingerprint")
        assert [f for f in hac.fsck() if f.kind.startswith("tenant-")] == []

    def test_out_of_band_writes_surface_as_drift(self, hac, acme):
        hac.write_file("/tenants/acme/sneaky.txt", b"behind the facade")
        drift = [f for f in hac.fsck() if f.kind == "tenant-usage-drift"]
        assert len(drift) == 1 and drift[0].severity == "warn"
        hac.fsck(repair=True)
        assert [f for f in hac.fsck()
                if f.kind == "tenant-usage-drift"] == []
        assert acme.ledger.usage()["inodes"] == 1
