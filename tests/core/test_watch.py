"""Eager data consistency: watched subtrees (extension of §2.4)."""

import pytest


class TestWatchRegistration:
    def test_add_returns_canonical_root(self, populated):
        root = populated.watch("/mail")
        assert root == "/mail"
        assert populated.watches.roots() == ["/mail"]

    def test_add_syncs_first(self, populated):
        populated.write_file("/mail/pre.txt", b"fingerprint before watch")
        populated.clock.tick()
        populated.smkdir("/fp", "fingerprint")
        assert "pre.txt" not in populated.listdir("/fp")  # lazy so far
        populated.watch("/mail")
        assert "pre.txt" in populated.listdir("/fp")      # watch syncs

    def test_remove(self, populated):
        populated.watch("/mail")
        assert populated.unwatch("/mail") is True
        assert populated.unwatch("/mail") is False
        assert populated.watches.roots() == []

    def test_covers(self, populated):
        populated.watch("/mail")
        assert populated.watches.covers("/mail/x.txt")
        assert populated.watches.covers("/mail")
        assert not populated.watches.covers("/notes/x.txt")


class TestEagerVisibility:
    def test_write_visible_immediately(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.watch("/mail")
        populated.write_file("/mail/hot.txt", b"breaking fingerprint news")
        assert "hot.txt" in populated.listdir("/fp")   # no ssync needed

    def test_unwatched_subtree_stays_lazy(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.watch("/mail")
        populated.write_file("/notes/cold.txt", b"fingerprint but lazy")
        assert "cold.txt" not in populated.listdir("/fp")
        populated.clock.tick()
        populated.ssync("/")
        assert "cold.txt" in populated.listdir("/fp")

    def test_modify_away_drops_immediately(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.watch("/mail")
        assert "msg1.txt" in populated.listdir("/fp")
        populated.clock.tick()
        populated.write_file("/mail/msg1.txt", b"now about gardening")
        assert "msg1.txt" not in populated.listdir("/fp")

    def test_delete_drops_immediately(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.watch("/mail")
        populated.unlink("/mail/msg1.txt")
        assert "msg1.txt" not in populated.listdir("/fp")

    def test_fd_write_triggers(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.watch("/mail")
        fd = populated.open("/mail/late.txt", "w")
        populated.write(fd, b"fingerprint via descriptor")
        populated.close(fd)
        assert "late.txt" in populated.listdir("/fp")

    def test_rename_into_watched_subtree(self, populated):
        populated.smkdir("/fpmail", "fingerprint AND /mail")
        populated.watch("/mail")
        populated.write_file("/notes/wander.txt", b"a fingerprint memo")
        populated.rename("/notes/wander.txt", "/mail/wander.txt")
        assert "wander.txt" in populated.listdir("/fpmail")

    def test_rename_refreshes_name_terms(self, populated):
        populated.watch("/mail")
        populated.smkdir("/named", "name:msg1")
        assert "msg1.txt" in populated.listdir("/named")
        populated.rename("/mail/msg1.txt", "/mail/other.txt")
        assert populated.listdir("/named") == []

    def test_truncate_triggers(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.watch("/mail")
        populated.truncate("/mail/msg1.txt", 0)
        assert "msg1.txt" not in populated.listdir("/fp")


class TestInteractionWithCuration:
    def test_prohibition_respected_by_eager_path(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.watch("/mail")
        populated.unlink("/fp/msg1.txt")      # prohibit
        populated.clock.tick()
        populated.write_file("/mail/msg1.txt",
                             b"still about the fingerprint sensor",
                             append=True)
        assert "msg1.txt" not in populated.listdir("/fp")

    def test_watch_counters(self, populated):
        populated.watch("/mail")
        populated.write_file("/mail/a.txt", b"x")
        populated.write_file("/mail/a.txt", b"y")
        assert populated.counters.get("watch.reindexed") >= 2
