"""Persisting the content index and fast recovery."""

import pytest

from repro.cba.engine import CBAEngine
from repro.cba.queryparser import parse_query
from repro.cba.transducers import default_transducer
from repro.core.hacfs import HacFileSystem


class TestEngineDump:
    def test_roundtrip_searches_identically(self):
        store = {"a": "alpha beta", "b": "From: alice\n\nalpha", "c": "gamma"}
        eng = CBAEngine(loader=store.__getitem__,
                        transducer=default_transducer)
        for key in sorted(store):
            eng.index_document(key, path=f"/{key}", mtime=1.0)
        # keys must look like (fsid, ino) for the dump; use tuples
        eng2_store = dict(store)
        dumped = CBAEngine(loader=lambda k: eng2_store.get(k[0], ""),
                           transducer=default_transducer)
        for i, key in enumerate(sorted(store)):
            dumped.index_document((key, i), path=f"/{key}", mtime=1.0,
                                  text=store[key])
        revived = CBAEngine.from_obj(dumped.to_obj(),
                                     loader=dumped.loader,
                                     transducer=default_transducer)
        for q in ("alpha", "from:alice", "alpha AND NOT gamma"):
            ast = parse_query(q)
            assert revived.search(ast) == dumped.search(ast), q
        assert len(revived) == len(dumped)
        assert revived.mtime_snapshot() == dumped.mtime_snapshot()

    def test_revived_engine_keeps_doc_ids(self):
        store = {("f", 1): "alpha", ("f", 2): "beta"}
        eng = CBAEngine(loader=store.__getitem__)
        for key in sorted(store):
            eng.index_document(key, path=f"/{key[1]}", mtime=0.0)
        revived = CBAEngine.from_obj(eng.to_obj(), loader=store.__getitem__)
        for key in store:
            assert revived.doc_id_of(key) == eng.doc_id_of(key)
        # new documents get fresh ids
        store[("f", 3)] = "gamma"
        new_id = revived.index_document(("f", 3), path="/3", mtime=0.0)
        assert new_id not in (eng.doc_id_of(k) for k in store if k != ("f", 3))


class TestHacRecovery:
    def test_save_and_restore_skips_retokenising(self, populated):
        populated.smkdir("/fp", "fingerprint")
        saved_bytes = populated.save_index()
        assert saved_bytes > 0

        revived = HacFileSystem.restore(populated.fs)
        assert revived.counters.get("engine.restored_docs") == 5
        # the incremental sync after restore had nothing to do
        assert revived.counters.get("engine.indexed") == 0
        assert sorted(revived.links("/fp")) == sorted(populated.links("/fp"))

    def test_restore_without_saved_index_merges_segments(self, populated):
        # no explicit save_index, but the segmented store persisted the
        # frozen segments at reindex time — restore folds them back with
        # zero tokenisation (reindex-as-merge) instead of rebuilding
        populated.smkdir("/fp", "fingerprint")
        revived = HacFileSystem.restore(populated.fs)
        assert revived.counters.get("restore.index_from_segments") == 1
        assert revived.counters.get("engine.restored_docs") == 5
        assert revived.counters.get("engine.indexed") == 0
        assert sorted(revived.links("/fp")) == sorted(populated.links("/fp"))

    def test_restore_without_segments_rebuilds(self, populated):
        populated.smkdir("/fp", "fingerprint")
        revived = HacFileSystem.restore(populated.fs, segmented=False)
        assert revived.counters.get("engine.restored_docs") == 0
        assert revived.counters.get("engine.indexed") == 5
        assert sorted(revived.links("/fp")) == sorted(populated.links("/fp"))

    def test_restore_catches_up_on_changes_since_save(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.save_index()
        populated.clock.tick()
        populated.write_file("/notes/late.txt", b"a late fingerprint note")
        populated.unlink("/mail/msg2.txt")
        revived = HacFileSystem.restore(populated.fs)
        assert revived.counters.get("engine.indexed") == 1   # only late.txt
        assert revived.counters.get("engine.removed") == 1   # only msg2
        assert "late.txt" in revived.listdir("/fp")

    def test_reuse_index_opt_out(self, populated):
        populated.save_index()
        revived = HacFileSystem.restore(populated.fs, reuse_index=False)
        assert revived.counters.get("engine.restored_docs") == 0
        assert len(revived.engine) == 5

    def test_restored_world_is_fsck_clean(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.unlink("/fp/msg1.txt")
        populated.save_index()
        revived = HacFileSystem.restore(populated.fs)
        assert [f for f in revived.fsck() if f.severity == "error"] == []
