"""Syntactic mounts through HacFileSystem: remote files join the name space."""

import pytest

from repro.vfs.filesystem import FileSystem


@pytest.fixture
def laptop():
    fs = FileSystem(name="laptop")
    fs.makedirs("/code")
    fs.write_file("/code/fp.c", b"laptop fingerprint code")
    fs.write_file("/code/other.c", b"unrelated utility")
    return fs


class TestSyntacticMount:
    def test_mount_adopts_directories(self, populated, laptop):
        populated.mkdir("/laptop")
        populated.mount("/laptop", laptop)
        assert populated.dirmap.uid_of("/laptop/code") is not None
        assert populated.isdir("/laptop/code")

    def test_mounted_files_indexed_after_sync(self, populated, laptop):
        populated.mkdir("/laptop")
        populated.mount("/laptop", laptop)
        populated.ssync("/")
        populated.smkdir("/fp", "fingerprint")
        assert "fp.c" in populated.links("/fp")
        assert populated.readlink("/fp/fp.c") == "/laptop/code/fp.c"

    def test_semantic_dir_inside_mounted_fs(self, populated, laptop):
        populated.mkdir("/laptop")
        populated.mount("/laptop", laptop)
        populated.ssync("/")
        populated.smkdir("/laptop/code/fpq", "fingerprint")
        # scope of /laptop/code is its subtree: only the laptop file
        assert set(populated.links("/laptop/code/fpq")) == {"fp.c"}

    def test_unmount_cleans_bookkeeping(self, populated, laptop):
        populated.mkdir("/laptop")
        populated.mount("/laptop", laptop)
        populated.ssync("/")
        detached = populated.unmount("/laptop")
        assert detached is laptop
        assert populated.dirmap.uid_of("/laptop/code") is None
        assert populated.dirmap.uid_of("/laptop") is not None  # cover dir stays
        populated.ssync("/")
        populated.smkdir("/fp", "fingerprint")
        assert "fp.c" not in populated.links("/fp")

    def test_unmount_drops_dangling_links_at_sync(self, populated, laptop):
        populated.mkdir("/laptop")
        populated.mount("/laptop", laptop)
        populated.ssync("/")
        populated.smkdir("/fp", "fingerprint")
        assert "fp.c" in populated.links("/fp")
        populated.unmount("/laptop")
        populated.ssync("/")
        assert "fp.c" not in populated.links("/fp")

    def test_combined_syntactic_and_semantic(self, populated, laptop, library):
        """The paper's pitch: one semantic directory gathering local files,
        a mounted laptop, and a mounted digital library."""
        populated.mkdir("/laptop")
        populated.mount("/laptop", laptop)
        populated.mkdir("/lib")
        populated.smount("/lib", library)
        populated.ssync("/")
        populated.smkdir("/everything", "fingerprint")
        links = populated.links("/everything")
        targets = {t for _c, t in links.values()}
        assert any("laptop" in t for t in targets)          # syntactic mount
        assert any(t.startswith("digilib://") for t in targets)  # semantic
        assert len(links) >= 5
