"""HacFileSystem as a plain hierarchical file system (the §2 promise:
everything still works with no semantic features in play)."""

import pytest

from repro.errors import FileExists, FileNotFound
from repro.core.hacfs import HacFileSystem


class TestOrdinaryUse:
    def test_mkdir_registers_bookkeeping(self, hacfs):
        hacfs.mkdir("/a")
        uid = hacfs.dirmap.uid_of("/a")
        assert uid is not None
        assert hacfs.meta.get(uid) is not None
        assert uid in hacfs.depgraph
        assert hacfs.depgraph.hierarchy_parent(uid) == 0

    def test_mkdir_persists_records(self, hacfs):
        before = hacfs.metadata_bytes()
        hacfs.mkdir("/a")
        assert hacfs.metadata_bytes() > before

    def test_makedirs(self, hacfs):
        hacfs.makedirs("/x/y/z")
        assert hacfs.isdir("/x/y/z")
        assert hacfs.dirmap.uid_of("/x/y") is not None

    def test_rmdir_cleans_bookkeeping(self, hacfs):
        hacfs.mkdir("/a")
        uid = hacfs.dirmap.uid_of("/a")
        hacfs.rmdir("/a")
        assert hacfs.dirmap.uid_of("/a") is None
        assert uid not in hacfs.depgraph
        assert hacfs.meta.get(uid) is None

    def test_file_roundtrip(self, hacfs):
        hacfs.write_file("/f.txt", b"hello")
        assert hacfs.read_file("/f.txt") == b"hello"
        hacfs.unlink("/f.txt")
        assert not hacfs.exists("/f.txt")

    def test_fd_io(self, hacfs):
        fd = hacfs.open("/f", "w")
        hacfs.write(fd, b"abcdef")
        hacfs.close(fd)
        fd = hacfs.open("/f", "r")
        hacfs.lseek(fd, 2)
        assert hacfs.read(fd, 2) == b"cd"
        hacfs.close(fd)

    def test_mkdir_through_symlink_registers_canonical_path(self, hacfs):
        hacfs.mkdir("/real")
        hacfs.symlink("/real", "/alias")
        hacfs.mkdir("/alias/sub")
        assert hacfs.dirmap.uid_of("/real/sub") is not None
        assert hacfs.dirmap.uid_of("/alias/sub") is None

    def test_errors_pass_through(self, hacfs):
        with pytest.raises(FileNotFound):
            hacfs.read_file("/nope")
        hacfs.mkdir("/a")
        with pytest.raises(FileExists):
            hacfs.mkdir("/a")


class TestStatCache:
    def test_stat_hits_cache_second_time(self, hacfs):
        hacfs.write_file("/f", b"12345")
        st1 = hacfs.stat("/f")
        before = hacfs.fs.counters.get("vfs.stat")
        st2 = hacfs.stat("/f")
        assert hacfs.fs.counters.get("vfs.stat") == before  # served from cache
        assert st2.size == st1.size
        assert st2.ino == st1.ino
        assert st2.type == st1.type

    def test_write_invalidates(self, hacfs):
        hacfs.write_file("/f", b"12345")
        hacfs.stat("/f")
        hacfs.write_file("/f", b"123")
        assert hacfs.stat("/f").size == 3

    def test_fd_write_invalidates(self, hacfs):
        hacfs.write_file("/f", b"")
        hacfs.stat("/f")
        fd = hacfs.open("/f", "a")
        hacfs.write(fd, b"xy")
        hacfs.close(fd)
        assert hacfs.stat("/f").size == 2

    def test_rename_invalidates(self, hacfs):
        hacfs.write_file("/f", b"123")
        hacfs.stat("/f")
        hacfs.rename("/f", "/g")
        with pytest.raises(FileNotFound):
            hacfs.stat("/f")
        assert hacfs.stat("/g").size == 3

    def test_unlink_invalidates(self, hacfs):
        hacfs.write_file("/f", b"1")
        hacfs.stat("/f")
        hacfs.unlink("/f")
        with pytest.raises(FileNotFound):
            hacfs.stat("/f")

    def test_create_primes_cache(self, hacfs):
        hacfs.create("/f")
        assert hacfs.counters.get("attrcache.put") >= 1

    def test_truncate_invalidates(self, hacfs):
        hacfs.write_file("/f", b"12345")
        hacfs.stat("/f")
        hacfs.truncate("/f", 1)
        assert hacfs.stat("/f").size == 1

    def test_chmod_invalidates(self, hacfs):
        hacfs.write_file("/f", b"1")
        hacfs.stat("/f")
        hacfs.chmod("/f", 0o600)
        assert hacfs.stat("/f").attrs.mode == 0o600


class TestRenameBookkeeping:
    def test_dir_rename_updates_map(self, hacfs):
        hacfs.makedirs("/a/b/c")
        uid_c = hacfs.dirmap.uid_of("/a/b/c")
        hacfs.rename("/a/b", "/moved")
        assert hacfs.dirmap.uid_of("/moved/c") == uid_c
        assert hacfs.dirmap.uid_of("/a/b/c") is None

    def test_dir_rename_reparents_depgraph(self, hacfs):
        hacfs.makedirs("/a/b")
        hacfs.mkdir("/x")
        uid_b = hacfs.dirmap.uid_of("/a/b")
        uid_x = hacfs.dirmap.uid_of("/x")
        hacfs.rename("/a/b", "/x/b")
        assert hacfs.depgraph.hierarchy_parent(uid_b) == uid_x

    def test_file_rename_updates_engine_path(self, populated):
        populated.rename("/notes/fp-design.txt", "/notes/design.txt")
        res = populated.fs.resolve("/notes/design.txt")
        doc = populated.engine.doc_by_key((res.fs.fsid, res.node.ino))
        assert doc.path == "/notes/design.txt"


class TestCountersAndReporting:
    def test_hac_counters_accumulate(self, hacfs):
        hacfs.mkdir("/a")
        hacfs.create("/a/f")
        assert hacfs.counters.get("hac.mkdir") == 1
        assert hacfs.counters.get("hac.create") == 1

    def test_shared_memory_bytes(self, hacfs):
        hacfs.write_file("/f", b"x")
        hacfs.stat("/f")
        assert hacfs.shared_memory_bytes() > 0

    def test_semantic_dirs_listing(self, populated):
        assert populated.semantic_dirs() == []
        populated.smkdir("/fp", "fingerprint")
        assert populated.semantic_dirs() == ["/fp"]
