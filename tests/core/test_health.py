"""The consolidated ``hac.health()`` degradation report — the only status surface."""

import pytest

from repro.errors import FileNotFound
from repro.remote.rpc import CircuitBreaker, RpcTransport
from repro.remote.searchsvc import SimulatedSearchService


@pytest.fixture
def degraded_remote(populated):
    """A mounted library whose transport is about to go dark."""
    breaker = CircuitBreaker(failure_threshold=3, cooldown=500.0,
                             clock=populated.clock,
                             counters=populated.counters, name="digilib")
    transport = RpcTransport("digilib", clock=populated.clock,
                             counters=populated.counters, seed=5,
                             breaker=breaker)
    lib = SimulatedSearchService("digilib", documents={
        "fp-survey": "fingerprint survey paper",
    }, transport=transport)
    populated.mkdir("/lib")
    populated.smount("/lib", lib)
    populated.smkdir("/fp", "fingerprint")      # healthy first sync
    transport.failure_rate = 1.0
    for _ in range(10):
        populated.clock.tick()
        populated.ssync("/")
        if breaker.state == "open":
            break
    return populated


def test_healthy_world_reports_no_degrading_directories(populated):
    populated.smkdir("/fp", "fingerprint")
    report = populated.health()
    assert report["directories"] == {}
    assert report["backends"] == {}
    assert report["shards"] == {}     # monolithic engine: nothing sharded


def test_degraded_remote_appears_in_one_report(degraded_remote):
    report = degraded_remote.health()
    assert report["backends"] == {"digilib": "open"}
    entry = report["directories"]["/fp"]
    assert "digilib" in entry["degraded_remote"]
    assert "fp-survey" in entry["degraded_links"]
    assert entry["degraded_shards"] == {}
    assert degraded_remote.counters.get("hac.health") >= 1


def test_path_restricts_the_directories_section(degraded_remote):
    report = degraded_remote.health("/fp")
    assert set(report["directories"]) == {"/fp"}
    # a healthy directory is absent even when asked for directly
    assert degraded_remote.health("/notes")["directories"] == {}
    # the global sections are unaffected by the restriction
    assert report["backends"] == {"digilib": "open"}


def test_per_probe_aliases_are_gone(degraded_remote):
    """The pre-PR 5 accessors were removed: health() is the only surface."""
    for alias in ("stale_" + "remote", "stale_" + "links", "stale_" + "shards"):
        assert not hasattr(degraded_remote, alias)


def test_health_keeps_raising_on_unknown_directories(populated):
    with pytest.raises(FileNotFound):
        populated.health("/no/such/dir")


def test_combined_degradation_one_report(degraded_remote):
    """Stale shard + open remote breaker + pending maintenance at once:
    every axis lands in the same ``health()`` snapshot."""
    from repro.cluster import ClusterFactory

    hac = degraded_remote                      # digilib breaker already open
    factory = ClusterFactory(shards=2, latency=0.0)
    cluster = factory(hac._load_doc, counters=hac.counters,
                      clock=hac.clock, transducer=hac.engine.transducer,
                      num_blocks=hac.engine.num_blocks,
                      fast_path=hac.engine.fast_path)
    hac.adopt_engine(cluster)
    victim = cluster.shard_of(next(iter(cluster.all_docs()), 0)) or "shard0"
    cluster.kill_shard(victim)
    hac.clock.tick()
    hac.ssync("/fp")                           # marks the shard stale
    # queue an intent *after* the sync (ssync's barrier drains the queue)
    hac.maintenance.set_mode("batched")
    hac.watch("/notes")
    hac.write_file("/notes/pending.txt", b"fingerprint update queued\n")

    report = hac.health()
    # axis 1: the dead shard, globally and per directory
    assert report["shards"][victim] == "down"
    assert victim in report["directories"]["/fp"]["degraded_shards"]
    # axis 2: the remote breaker, in backends and the breakers section
    assert report["backends"]["digilib"] == "open"
    assert report["breakers"]["digilib"]["state"] == "open"
    assert report["breakers"]["digilib"]["transitions"]
    assert "digilib" in report["directories"]["/fp"]["degraded_remote"]
    # axis 3: the queued maintenance intent
    assert report["admission"]["pending"] >= 1
    # and the admission gate reads the same world as degraded
    hac.admission.enable()
    degraded = hac.admission.degraded_backends()
    assert "digilib" in degraded
    assert f"shard.{victim}" in degraded
    assert report["admission"]["enabled"] is False   # snapshot predates enable


def test_dead_shard_surfaces_in_health(populated):
    from repro.cluster import ClusterFactory

    factory = ClusterFactory(shards=3, latency=0.0)
    cluster = factory(populated._load_doc, counters=populated.counters,
                      clock=populated.clock,
                      transducer=populated.engine.transducer,
                      num_blocks=populated.engine.num_blocks,
                      fast_path=populated.engine.fast_path)
    populated.adopt_engine(cluster)
    populated.smkdir("/fp", "fingerprint")
    victim = cluster.shard_of(next(iter(cluster.all_docs()), 0)) or "shard0"
    cluster.kill_shard(victim)
    populated.clock.tick()
    populated.ssync("/")
    report = populated.health()
    assert report["shards"][victim] == "down"
    stale = {sid for entry in report["directories"].values()
             for sid in entry["degraded_shards"]}
    assert victim in stale
