"""Unit tests for scope computation (§2.3)."""

import pytest


def doc_ids(hacfs, *paths):
    out = set()
    for path in paths:
        res = hacfs.fs.resolve(path)
        doc = hacfs.engine.doc_id_of((res.fs.fsid, res.node.ino))
        assert doc is not None, path
        out.add(doc)
    return out


class TestRootScope:
    def test_root_provides_all_indexed_files(self, populated):
        scope = populated.scopes.provided("/")
        assert set(scope.local) == doc_ids(
            populated, "/notes/fp-design.txt", "/notes/recipe.txt",
            "/mail/msg1.txt", "/mail/msg2.txt", "/src/match.c")

    def test_root_namespaces_cover_all_mounts(self, populated, library):
        populated.mkdir("/lib")
        populated.smount("/lib", library)
        assert populated.scopes.provided("/").namespaces == {"digilib"}


class TestSyntacticScope:
    def test_subtree_files(self, populated):
        scope = populated.scopes.provided("/notes")
        assert set(scope.local) == doc_ids(
            populated, "/notes/fp-design.txt", "/notes/recipe.txt")

    def test_unindexed_file_not_in_scope(self, populated):
        populated.write_file("/notes/new.txt", b"fresh fingerprint data")
        scope = populated.scopes.provided("/notes")
        # not yet indexed (data consistency is lazy): only 2 docs
        assert len(scope.local) == 2

    def test_symlink_targets_counted(self, populated):
        populated.symlink("/src/match.c", "/notes/code-link")
        scope = populated.scopes.provided("/notes")
        assert doc_ids(populated, "/src/match.c") <= set(scope.local)

    def test_dangling_symlink_ignored(self, populated):
        populated.symlink("/gone", "/notes/dangle")
        scope = populated.scopes.provided("/notes")
        assert len(scope.local) == 2

    def test_remote_symlink_contributes_remote_member(self, populated, library):
        populated.mkdir("/lib")
        populated.smount("/lib", library)
        populated.symlink("digilib://fp-survey", "/notes/survey")
        scope = populated.scopes.provided("/notes")
        assert {r.uri() for r in scope.remote} == {"digilib://fp-survey"}

    def test_namespaces_under(self, populated, library):
        populated.makedirs("/a/b")
        populated.smount("/a/b", library)
        assert populated.scopes.provided("/a").namespaces == {"digilib"}
        assert populated.scopes.provided("/notes").namespaces == set()


class TestSemanticScope:
    def test_semantic_dir_provides_its_links(self, populated):
        populated.smkdir("/fp", "fingerprint")
        scope = populated.scopes.provided("/fp")
        assert set(scope.local) == doc_ids(
            populated, "/notes/fp-design.txt", "/mail/msg1.txt", "/src/match.c")

    def test_physical_files_directly_inside_count(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.write_file("/fp/extra.txt", b"added by hand")
        populated.ssync("/")
        scope = populated.scopes.provided("/fp")
        assert doc_ids(populated, "/fp/extra.txt") <= set(scope.local)

    def test_semantic_links_excluded_from_syntactic_ancestor(self, populated):
        populated.mkdir("/group")
        populated.smkdir("/group/fp", "fingerprint")
        # /group's provided scope must NOT contain fp's query results
        scope = populated.scopes.provided("/group")
        assert not set(scope.local)

    def test_plain_dir_symlinks_do_count_for_ancestor(self, populated):
        populated.mkdir("/group")
        populated.symlink("/src/match.c", "/group/code")
        scope = populated.scopes.provided("/group")
        assert set(scope.local) == doc_ids(populated, "/src/match.c")

    def test_dangling_uid_scope_empty(self, populated):
        scope = populated.scopes.provided_by_uid(424242)
        assert not scope.local and not scope.remote and not scope.namespaces

    def test_repr(self, populated):
        assert "Scope(" in repr(populated.scopes.provided("/"))
