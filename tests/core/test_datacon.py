"""Data consistency: the lazy reindex policy of §2.4."""

import pytest


class TestLaziness:
    def test_new_file_invisible_until_sync(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.write_file("/notes/new.txt", b"more fingerprint material")
        assert "new.txt" not in populated.listdir("/fp")
        populated.clock.tick()
        populated.ssync("/")
        assert "new.txt" in populated.listdir("/fp")

    def test_modified_file_stale_until_sync(self, populated):
        populated.smkdir("/fp", "fingerprint")
        assert "recipe.txt" not in populated.listdir("/fp")
        populated.clock.tick()
        populated.write_file("/notes/recipe.txt",
                             b"fingerprint cookies recipe")
        assert "recipe.txt" not in populated.listdir("/fp")  # still stale
        populated.ssync("/")
        assert "recipe.txt" in populated.listdir("/fp")

    def test_deleted_file_link_dangles_until_sync(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.unlink("/mail/msg1.txt")
        populated.clock.tick()
        populated.ssync("/")
        assert "msg1.txt" not in populated.listdir("/fp")

    def test_file_modified_away_from_query_dropped_at_sync(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.clock.tick()
        populated.write_file("/mail/msg1.txt", b"now all about gardening")
        populated.ssync("/")
        assert "msg1.txt" not in populated.listdir("/fp")
        # NOT prohibited — it simply stopped matching
        assert populated.prohibited("/fp") == []

    def test_moved_out_of_scope_dropped_at_sync(self, populated):
        """The paper's archive example: a matching file moved outside the
        query's scope must leave the semantic directory."""
        populated.smkdir("/fp", "fingerprint AND /mail")
        assert set(populated.links("/fp")) == {"msg1.txt"}
        populated.mkdir("/archive")
        populated.rename("/mail/msg1.txt", "/archive/msg1.txt")
        populated.ssync("/")
        assert populated.listdir("/fp") == []


class TestSubtreeReindex:
    def test_subtree_reindex_leaves_outside_docs(self, populated):
        populated.write_file("/mail/new.txt", b"new fingerprint mail")
        populated.clock.tick()
        plan = populated.reindex("/mail")
        assert plan.added and not plan.removed
        assert len(populated.engine) == 6

    def test_subtree_sync_updates_dependents(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.write_file("/mail/new.txt", b"fresh fingerprint news")
        populated.clock.tick()
        populated.ssync("/mail")
        assert "new.txt" in populated.listdir("/fp")

    def test_reindex_noop_when_unchanged(self, populated):
        assert populated.reindex("/").is_noop


class TestScheduler:
    def test_periodic_reindex_fires_on_clock(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.scheduler.set_period(3600.0)  # "once an hour"
        populated.write_file("/notes/late.txt", b"late fingerprint note")
        populated.clock.advance(1800)
        assert "late.txt" not in populated.listdir("/fp")
        populated.clock.advance(1801)
        assert "late.txt" in populated.listdir("/fp")
        assert populated.scheduler.runs == 1

    def test_period_change_rearms(self, populated):
        populated.scheduler.set_period(100.0)
        populated.scheduler.set_period(10.0)
        populated.clock.advance(11)
        assert populated.scheduler.runs == 1
        populated.scheduler.cancel()
        populated.clock.advance(1000)
        assert populated.scheduler.runs == 1

    def test_history_records_plans(self, populated):
        populated.write_file("/x.txt", b"hello fingerprint")
        populated.clock.tick()
        plan = populated.scheduler.sync("/")
        assert populated.scheduler.history[-1][1] == "/"
        assert plan.added


class TestRestore:
    def test_restore_rebuilds_from_device(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.unlink("/fp/msg1.txt")               # a prohibition
        populated.symlink("/notes/recipe.txt", "/fp/recipe.txt")  # permanent
        fs = populated.fs

        from repro.core.hacfs import HacFileSystem
        revived = HacFileSystem.restore(fs)
        assert revived.is_semantic("/fp")
        assert revived.get_query("/fp") == "fingerprint"
        assert "msg1.txt" not in revived.listdir("/fp")   # tombstone held
        assert revived.classify("/fp/recipe.txt") == "permanent"
        assert set(revived.links("/fp")) == {
            "fp-design.txt", "match.c", "recipe.txt"}

    def test_restore_preserves_uids_for_queries(self, populated):
        populated.smkdir("/fp", "fingerprint")
        populated.smkdir("/watch", "/fp AND alice")
        uid = populated.dirmap.uid_of("/fp")

        from repro.core.hacfs import HacFileSystem
        revived = HacFileSystem.restore(populated.fs)
        assert revived.dirmap.uid_of("/fp") == uid
        assert revived.get_query("/watch") == "/fp AND alice"
        assert "msg1.txt" in revived.listdir("/watch")
