"""Crash recovery and soft-failure atomicity at the HacFileSystem level."""

import pytest

from repro.errors import CorruptRecord, DeviceCrashed, NoSpace
from repro.core.hacfs import HacFileSystem
from repro.vfs.blockdev import FaultPlan


def errors(hacfs):
    return [f for f in hacfs.fsck() if f.severity == "error"]


class TestEnospcAtomicity:
    def test_enospc_mid_write_file_leaves_old_content(self, populated):
        populated.write_file("/notes/draft.txt", b"v1")
        dev = populated.fs.device
        dev.set_fault_plan(FaultPlan(enospc_allocs={dev.alloc_index}))
        with pytest.raises(NoSpace):
            populated.write_file("/notes/draft.txt", b"v2" * 4096)
        dev.clear_faults()
        assert populated.read_file("/notes/draft.txt") == b"v1"
        assert errors(populated) == []

    def test_enospc_mid_write_file_removes_created_file(self, populated):
        dev = populated.fs.device
        dev.set_fault_plan(FaultPlan(enospc_allocs={dev.alloc_index}))
        with pytest.raises(NoSpace):
            populated.write_file("/notes/huge.txt", b"x" * 4096)
        dev.clear_faults()
        assert not populated.exists("/notes/huge.txt")
        assert errors(populated) == []

    @pytest.mark.parametrize("offset", range(8))
    def test_enospc_mid_smkdir_is_atomic(self, populated, offset):
        dev = populated.fs.device
        dev.set_fault_plan(
            FaultPlan(enospc_at={dev.record_write_index + offset}))
        try:
            populated.smkdir("/fp", "fingerprint")
            applied = True
        except NoSpace:
            applied = False
        dev.clear_faults()
        assert errors(populated) == []
        if applied:
            assert populated.is_semantic("/fp")
            assert "fp-design.txt" in populated.links("/fp")
        else:
            # fully absent: no directory, no map entry, no record
            assert not populated.exists("/fp")
            assert populated.dirmap.uid_of("/fp") is None
        # and the instance is still usable afterwards
        populated.smkdir("/fp2", "fingerprint")
        assert populated.is_semantic("/fp2")
        assert errors(populated) == []

    def test_enospc_mid_set_query_keeps_old_query(self, populated):
        populated.smkdir("/fp", "fingerprint")
        before_links = dict(populated.links("/fp"))
        dev = populated.fs.device
        dev.set_fault_plan(FaultPlan(enospc_at={dev.record_write_index}))
        with pytest.raises(NoSpace):
            populated.set_query("/fp", "banana")
        dev.clear_faults()
        assert populated.get_query("/fp") == "fingerprint"
        assert populated.links("/fp") == before_links
        assert errors(populated) == []

    def test_failed_cycle_set_query_rolls_back_cleanly(self, populated):
        from repro.errors import DependencyCycle

        populated.smkdir("/a", "fingerprint")
        populated.smkdir("/b", "/a")
        with pytest.raises(DependencyCycle):
            populated.set_query("/a", "/b")
        assert populated.get_query("/a") == "fingerprint"
        assert errors(populated) == []


class TestRestoreRecovery:
    def test_clean_reopen_reports_clean_recovery(self, populated):
        populated.save_index()
        restored = HacFileSystem.restore(populated.fs)
        assert restored.last_recovery.clean
        assert errors(restored) == []

    def test_crash_mid_smkdir_recovers_to_absent(self, populated):
        dev = populated.fs.device
        dev.set_fault_plan(FaultPlan(crash_at=dev.record_write_index + 3))
        with pytest.raises(DeviceCrashed):
            populated.smkdir("/fp", "fingerprint")
        restored = HacFileSystem.restore(populated.fs)
        assert not restored.last_recovery.clean
        assert [op for _seq, op in restored.last_recovery.rolled_back] \
            == ["smkdir"]
        assert not restored.exists("/fp")
        assert restored.dirmap.uid_of("/fp") is None
        assert errors(restored) == []

    def test_crash_mid_rmdir_restores_the_directory(self, populated):
        populated.mkdir("/victim")
        dev = populated.fs.device
        dev.set_fault_plan(FaultPlan(crash_at=dev.record_write_index + 1))
        with pytest.raises(DeviceCrashed):
            populated.rmdir("/victim")
        restored = HacFileSystem.restore(populated.fs)
        assert restored.isdir("/victim")
        assert restored.dirmap.uid_of("/victim") is not None
        assert errors(restored) == []

    def test_torn_write_is_healed_by_the_journal(self, populated):
        dev = populated.fs.device
        dev.set_fault_plan(FaultPlan(tear_at=dev.record_write_index + 3))
        with pytest.raises(DeviceCrashed):
            populated.smkdir("/fp", "fingerprint")
        restored = HacFileSystem.restore(populated.fs)
        assert errors(restored) == []
        # the torn record was rolled back to its pre-image (or removed)
        assert all(dev.verify_record(k) for k in dev.record_keys())

    def test_wal_left_by_crash_is_an_fsck_error_before_restore(self, populated):
        dev = populated.fs.device
        dev.set_fault_plan(FaultPlan(crash_at=dev.record_write_index + 3))
        with pytest.raises(DeviceCrashed):
            populated.smkdir("/fp", "fingerprint")
        dev.clear_faults()
        kinds = {f.kind for f in errors(populated)}
        assert "pending-intent" in kinds


class TestIndexRestoreDistinction:
    def test_no_record_restores_from_segments_and_counts(self, populated):
        from repro.util.stats import Counters

        counters = Counters()
        restored = HacFileSystem.restore(populated.fs, counters=counters)
        assert counters.get("restore.index_from_segments") == 1
        assert counters.get("restore.index_rebuilds") == 0
        assert counters.get("restore.index_restored") == 0
        assert errors(restored) == []

    def test_no_record_no_segments_rebuilds_and_counts(self, populated):
        from repro.util.stats import Counters

        counters = Counters()
        restored = HacFileSystem.restore(populated.fs, counters=counters,
                                         segmented=False)
        assert counters.get("restore.index_rebuilds") == 1
        assert counters.get("restore.index_restored") == 0
        assert errors(restored) == []

    def test_saved_record_restores_and_counts(self, populated):
        from repro.util.stats import Counters

        populated.save_index()
        counters = Counters()
        restored = HacFileSystem.restore(populated.fs, counters=counters)
        assert counters.get("restore.index_restored") == 1
        assert counters.get("restore.index_rebuilds") == 0
        assert errors(restored) == []

    def test_corrupt_record_raises_instead_of_silent_rebuild(self, populated):
        from repro.util.stats import Counters

        populated.save_index()
        populated.fs.device.corrupt_record("cbaindex")
        counters = Counters()
        with pytest.raises(CorruptRecord):
            HacFileSystem.restore(populated.fs, counters=counters)
        assert counters.get("restore.index_corrupt") == 1

    def test_corrupt_record_is_an_fsck_finding(self, populated):
        populated.save_index()
        populated.fs.device.corrupt_record("cbaindex")
        findings = [f for f in populated.fsck()
                    if f.kind == "corrupt-record" and f.severity == "error"]
        assert findings and findings[0].path == "cbaindex"

    def test_reuse_index_false_opts_into_rebuild(self, populated):
        populated.save_index()
        populated.fs.device.corrupt_record("cbaindex")
        restored = HacFileSystem.restore(populated.fs, reuse_index=False)
        assert restored.engine is not None
        # note: the corrupt record stays on the device and keeps being
        # reported by fsck until the next save_index overwrites it
        assert any(f.kind == "corrupt-record" for f in restored.fsck())


class TestPathMapAcrossRestore:
    """Restore must bump the PathMap generation even when the caller pins
    the fsid and hands the same FileSystem back (the crash-recovery
    reopen path): stale cached resolutions must never survive a reopen."""

    def _pinned_world(self):
        from repro.vfs.filesystem import FileSystem

        fs = FileSystem(name="hac", fsid="hac#pinned")
        hac = HacFileSystem(fs=fs)
        hac.makedirs("/proj/a")
        hac.write_file("/proj/a/f.txt", b"fingerprint data")
        hac.ssync("/")
        hac.save_index()
        return fs, hac

    def test_restore_invalidates_the_pinned_fsid_map(self):
        fs, hac = self._pinned_world()
        # warm the cache so stale entries exist to serve
        assert hac.read_file("/proj/a/f.txt") == b"fingerprint data"
        before = fs._pathmap.generation
        HacFileSystem.restore(fs)
        assert fs._pathmap.generation > before

    def test_rename_after_pinned_restore_resolves_fresh(self):
        fs, hac = self._pinned_world()
        assert hac.read_file("/proj/a/f.txt") == b"fingerprint data"
        again = HacFileSystem.restore(fs)
        again.rename("/proj/a", "/proj/b")
        assert again.read_file("/proj/b/f.txt") == b"fingerprint data"
        assert not again.exists("/proj/a/f.txt")
        again.ssync("/")
        doc = next(again.engine.doc_by_id(d)
                   for d in again.engine.all_docs())
        assert doc.path == "/proj/b/f.txt"
