"""Ablation K — batched maintenance vs eager per-write upkeep.

The maintenance scheduler coalesces watch-driven index updates per
document (last-write-wins) and applies each batch under a single
``sched_batch`` group-commit intent.  On a write-heavy mail workload —
the paper's "as soon as new mail comes in" example at drafting volume,
where most messages are rewritten several times before they settle —
eager mode pays one tokenisation pass and one journal intent per write,
while batched mode pays one tokenisation per *settled document* and one
intent per *batch*.

The cost model to verify, all on deterministic counters: batched mode
performs at least 2x fewer journal record writes (``journal.begins`` +
``journal.preimages``) and at least 2x fewer tokenisation passes
(``engine.tokenisations``) than eager mode for the identical event
sequence, while the final index state and every query answer stay
bit-identical (doc ids are reserved at enqueue time, so block placement
matches the eager world's exactly).

Wall times are report-only; every asserted guard reads counters.
"""

import pytest

from repro.bench.harness import BenchResult, report, time_call, traced_call
from repro.cba.queryparser import parse_query
from repro.core.hacfs import HacFileSystem
from repro.workloads.mailgen import MailGenerator

VERSIONS = 3          # drafts per message before it settles
REMOVE_EVERY = 7      # every Nth message is spam: written, then unlinked

QUERIES = ["fingerprint", "project", "fingerprint AND project",
           "budget OR deadline", "glimpse AND NOT lunch"]


def build_world(mode):
    hac = HacFileSystem()
    hac.makedirs("/mail")
    hac.clock.tick()
    hac.ssync("/")
    hac.smkdir("/fp", "fingerprint")
    hac.watch("/mail")
    hac.maintenance.set_mode(mode)
    return hac


def run_workload(hac, count):
    """Write *count* messages in drafting bursts, unlink the spam, then
    settle everything with an explicit drain (a no-op in eager mode)."""
    gen = MailGenerator()
    for index in range(count):
        path = f"/mail/msg{index:04d}.txt"
        for version in range(VERSIONS):
            hac.clock.tick()
            text = gen.render(index) + f"draft revision {version}\n"
            hac.write_file(path, text.encode("utf-8"))
        if index % REMOVE_EVERY == 0:
            hac.clock.tick()
            hac.unlink(path)
    hac.maintenance.drain()


def wal_writes(counters):
    return counters.get("journal.begins") + counters.get("journal.preimages")


def snapshot(hac):
    return {
        "wal": wal_writes(hac.counters),
        "tokenisations": hac.counters.get("engine.tokenisations"),
        "drains": hac.counters.get("sched.drains"),
        "coalesced": hac.counters.get("sched.coalesced"),
        "events": hac.counters.get("sched.events"),
    }


def delta(before, after):
    return {name: after[name] - before[name] for name in before}


def answers(hac):
    return [hac.engine.search(parse_query(q)).to_bytes() for q in QUERIES]


@pytest.mark.benchmark(group="ablation-sched")
def test_batched_maintenance_cost(benchmark, record_report, record_json,
                                  scale):
    count = 60 * scale

    def run():
        eager = build_world("eager")
        base = snapshot(eager)
        eager_secs, _ = time_call(lambda: run_workload(eager, count))
        eager_cost = delta(base, snapshot(eager))

        batched = build_world("batched")
        base = snapshot(batched)
        batched_secs, _, breakdown = traced_call(
            batched.obs, lambda: run_workload(batched, count))
        batched_cost = delta(base, snapshot(batched))
        return (eager, eager_secs, eager_cost,
                batched, batched_secs, batched_cost, breakdown)

    (eager, eager_secs, eager_cost, batched, batched_secs, batched_cost,
     breakdown) = benchmark.pedantic(run, rounds=1, iterations=1,
                                     warmup_rounds=1)

    # --- correctness: the two worlds are indistinguishable --------------
    assert answers(batched) == answers(eager)
    assert set(batched.links("/fp")) == set(eager.links("/fp"))
    assert batched.engine.all_docs().to_bytes() == \
        eager.engine.all_docs().to_bytes()

    # --- deterministic guards: the group commit pays for itself ---------
    wal_ratio = eager_cost["wal"] / max(batched_cost["wal"], 1)
    assert wal_ratio >= 2.0, (
        f"group commit must at least halve journal record writes: "
        f"{eager_cost['wal']} eager vs {batched_cost['wal']} batched")
    tok_ratio = eager_cost["tokenisations"] / \
        max(batched_cost["tokenisations"], 1)
    assert tok_ratio >= 2.0, (
        f"coalescing must at least halve tokenisation passes: "
        f"{eager_cost['tokenisations']} eager vs "
        f"{batched_cost['tokenisations']} batched")
    # the same event stream reached both schedulers, and batching showed
    assert batched_cost["events"] == eager_cost["events"]
    assert batched_cost["coalesced"] > 0
    assert batched_cost["drains"] < eager_cost["drains"]

    results = [
        BenchResult("messages", count),
        BenchResult("write events", eager_cost["events"]),
        BenchResult("eager workload s", eager_secs, unit="s"),
        BenchResult("batched workload s", batched_secs, unit="s",
                    spans=breakdown),
        BenchResult("eager wal record writes", eager_cost["wal"]),
        BenchResult("batched wal record writes", batched_cost["wal"]),
        BenchResult("wal write ratio (>= 2)", wal_ratio),
        BenchResult("eager tokenisations", eager_cost["tokenisations"]),
        BenchResult("batched tokenisations", batched_cost["tokenisations"]),
        BenchResult("tokenisation ratio (>= 2)", tok_ratio),
        BenchResult("eager drains", eager_cost["drains"]),
        BenchResult("batched drains", batched_cost["drains"]),
        BenchResult("batched events coalesced", batched_cost["coalesced"]),
    ]
    record_report(report("Ablation K: batched maintenance pipeline", results))
    record_json("ablation_sched", results, spans=breakdown,
                extra={"versions_per_message": VERSIONS,
                       "wal_write_ratio": wal_ratio,
                       "tokenisation_ratio": tok_ratio})
