"""Ablation H — the query fast path, end to end.

The fast path stacks four mechanisms: planner-ordered conjunctions,
doc-level postings that answer term queries without any loader fetch,
per-(doc, query) verification memoisation, and block-exact cache
invalidation (mutating one doc only evicts results whose candidate blocks
contain its block).  This ablation drives the same ``ssync``-triggered
re-evaluation workload — several semantic directories, repeated rounds of
touching <1 % of the corpus — through two otherwise identical HAC worlds,
one with ``fast_path=True`` and one with the seed scan-everything
behaviour, and compares the engine's ``docs_scanned`` counters and the
wall-clock of the many-matches query the Table 4 bench times.

Acceptance shape: >=5x fewer docs scanned on the re-evaluation workload,
and a measured speedup on the cold many-matches search.
"""

import pytest

from repro.bench.harness import BenchResult, report, time_call
from repro.cba.queryparser import parse_query
from repro.core.hacfs import HacFileSystem
from repro.workloads.corpus import CorpusConfig, CorpusGenerator

TOPICS = {"needleword": 0.05, "commonword": 0.5}
ROUNDS = 5
TOUCHES_PER_ROUND = 2   # 2 of 400 files = 0.5 % dirty per round


def build_world(fast_path, scale):
    cfg = CorpusConfig(n_files=400 * scale, words_per_file=150, dirs=10,
                       topics=TOPICS, seed=17)
    gen = CorpusGenerator(cfg)
    hac = HacFileSystem(num_blocks=256, fast_path=fast_path)
    paths = gen.populate(hac, "/db")
    hac.clock.tick()
    hac.ssync("/")
    # the re-evaluation cascade: flat, compound (planner-orderable), and
    # nested semantic directories, as a real HAC namespace would hold
    hac.smkdir("/needle", "needleword")
    hac.smkdir("/common", "commonword")
    hac.smkdir("/both", "commonword AND needleword")
    hac.smkdir("/needle/rare", "commonword")
    return hac, gen, paths


def churn(hac, gen, paths):
    """ROUNDS rounds of touching a handful of files, each followed by a
    full ``ssync`` (reindex + re-evaluate every semantic directory)."""
    for rnd in range(ROUNDS):
        for i in range(TOUCHES_PER_ROUND):
            idx = (rnd * 41 + i * 173) % len(paths)
            text = gen.document(idx) + f"touched round{rnd}\n"
            hac.write_file(paths[idx], text.encode("utf-8"))
        hac.clock.tick()
        hac.ssync("/")


@pytest.mark.benchmark(group="ablation-fastpath")
@pytest.mark.parametrize("fast_path", [True, False],
                         ids=["fast-path", "seed-scan"])
def test_reevaluation_churn_speed(benchmark, fast_path, scale):
    hac, gen, paths = build_world(fast_path, scale)
    benchmark.pedantic(lambda: churn(hac, gen, paths),
                       rounds=1, iterations=1)


@pytest.mark.benchmark(group="ablation-fastpath-report")
def test_fastpath_scan_reduction(benchmark, record_report, scale):
    def run():
        out = {}
        for fast_path in (True, False):
            hac, gen, paths = build_world(fast_path, scale)
            hac.counters.reset()
            secs, _ = time_call(lambda: churn(hac, gen, paths))
            out[fast_path] = (hac, secs, hac.counters.snapshot())
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    fast_hac, fast_secs, fast_counters = data[True]
    slow_hac, slow_secs, slow_counters = data[False]
    fast_scanned = fast_counters.get("engine.docs_scanned", 0)
    slow_scanned = slow_counters.get("engine.docs_scanned", 0)

    # the Table 4 "many matches" case, timed cold on both engines
    ast = parse_query("commonword")

    def cold(hac):
        hac.engine.clear_query_cache()
        return time_call(lambda: hac.engine.search(ast))[0]

    fast_search = min(cold(fast_hac) for _ in range(3))
    slow_search = min(cold(slow_hac) for _ in range(3))
    assert fast_hac.engine.search(ast) == slow_hac.engine.search(ast)

    results = [
        BenchResult("churn docs scanned (fast path)", fast_scanned),
        BenchResult("churn docs scanned (seed scan)", slow_scanned),
        BenchResult("scan reduction",
                    slow_scanned / max(fast_scanned, 1)),
        BenchResult("churn seconds (fast path)", fast_secs),
        BenchResult("churn seconds (seed scan)", slow_secs),
        BenchResult("scans avoided (postings+memo)",
                    fast_counters.get("engine.docs_scan_avoided", 0)),
        BenchResult("postings-answered searches",
                    fast_counters.get("engine.postings_answers", 0)),
        BenchResult("cache entries surviving mutations",
                    fast_counters.get("engine.cache_survivals", 0)),
        BenchResult("planner reorders",
                    fast_counters.get("engine.planner_reorders", 0)),
        BenchResult("many-matches cold search s (fast path)", fast_search),
        BenchResult("many-matches cold search s (seed scan)", slow_search),
        BenchResult("many-matches speedup", slow_search / max(fast_search,
                                                              1e-9)),
    ]
    record_report(report("Ablation H: query fast path", results))

    # --- acceptance shape ------------------------------------------------
    assert slow_scanned >= 5 * max(fast_scanned, 1), (
        f"fast path must scan >=5x fewer docs on the churn workload: "
        f"{fast_scanned:g} vs {slow_scanned:g}")
    assert fast_search < slow_search, \
        "the many-matches query must be faster with the fast path on"
    # every mechanism must actually fire
    assert fast_counters.get("engine.postings_answers", 0) > 0
    assert fast_counters.get("engine.docs_scan_avoided", 0) > 0
    assert fast_counters.get("engine.planner_reorders", 0) > 0
    assert fast_counters.get("engine.cache_survivals", 0) > 0
