"""Ablation A — the paper's bitmap result representation vs Python sets.

The paper stores each directory's result as an N/8-byte bitmap, arguing it
is compact and fast to combine.  This ablation quantifies both claims in
our substrate: serialized size and intersection throughput against a plain
``set`` of ints at several result densities.

It also pits the current big-int kernels (one ``int.from_bytes``, whole-set
``|``/``&``/``&~`` in C, ``int.bit_count()`` popcount) against the seed
bytearray implementation they replaced, at 10k/100k/1M id scales — the
byte-at-a-time Python loops are the part the rewrite deleted.
"""

import random

import pytest

from repro.bench.harness import BenchResult, report, time_call
from repro.util.bitmap import Bitmap

N = 20000
DENSITY = 0.3

_POPCOUNT = bytes(bin(i).count("1") for i in range(256))


class SeedBitmap:
    """The seed's bytearray bitmap, kept verbatim as the ablation baseline
    (construction, in-place algebra, and popcount kernels only)."""

    __slots__ = ("_bits",)

    def __init__(self, ids=()):
        self._bits = bytearray()
        for i in ids:
            self.add(i)

    def add(self, i):
        byte, bit = divmod(i, 8)
        if byte >= len(self._bits):
            self._bits.extend(b"\x00" * (byte + 1 - len(self._bits)))
        self._bits[byte] |= 1 << bit

    def to_bytes(self):
        return bytes(self._bits)

    def copy(self):
        bm = SeedBitmap()
        bm._bits = bytearray(self._bits)
        return bm

    def __ior__(self, other):
        if len(other._bits) > len(self._bits):
            self._bits.extend(b"\x00" * (len(other._bits) - len(self._bits)))
        for idx, byte in enumerate(other._bits):
            self._bits[idx] |= byte
        return self

    def __iand__(self, other):
        n = min(len(self._bits), len(other._bits))
        del self._bits[n:]
        for idx in range(n):
            self._bits[idx] &= other._bits[idx]
        self._trim()
        return self

    def __isub__(self, other):
        n = min(len(self._bits), len(other._bits))
        for idx in range(n):
            self._bits[idx] &= ~other._bits[idx] & 0xFF
        self._trim()
        return self

    def __len__(self):
        return sum(_POPCOUNT[b] for b in self._bits)

    def _trim(self):
        while self._bits and self._bits[-1] == 0:
            del self._bits[-1]


KERNEL_SCALES = (10_000, 100_000, 1_000_000)
KERNEL_DENSITY = 0.3


def make_ids(n, seed):
    rng = random.Random(seed)
    return [i for i in range(n) if rng.random() < KERNEL_DENSITY]


def make_pair(seed):
    rng = random.Random(seed)
    members = {i for i in range(N) if rng.random() < DENSITY}
    return members, Bitmap(members)


@pytest.mark.benchmark(group="ablation-bitmap")
def test_bitmap_intersection_speed(benchmark):
    _m1, b1 = make_pair(1)
    _m2, b2 = make_pair(2)
    result = benchmark(lambda: b1 & b2)
    assert len(result) > 0


@pytest.mark.benchmark(group="ablation-bitmap")
def test_set_intersection_speed(benchmark):
    m1, _b1 = make_pair(1)
    m2, _b2 = make_pair(2)
    result = benchmark(lambda: m1 & m2)
    assert len(result) > 0


@pytest.mark.benchmark(group="ablation-bitmap-size")
def test_bitmap_size_claim(benchmark, record_report):
    def sizes():
        members, bitmap = make_pair(3)
        # a naive on-disk set: 4 bytes per member id
        set_bytes = 4 * len(members)
        return len(members), bitmap.nbytes, set_bytes

    count, bitmap_bytes, set_bytes = benchmark.pedantic(sizes, rounds=1,
                                                        iterations=1)
    results = [
        BenchResult("result members", count),
        BenchResult("bitmap bytes (N/8)", bitmap_bytes, N / 8),
        BenchResult("4-byte-id set bytes", set_bytes),
        BenchResult("compression vs id list", set_bytes / bitmap_bytes),
    ]
    record_report(report("Ablation A: bitmap vs set representation", results))
    # at 30% density the bitmap wins by ~10x; it loses only below ~3% density
    assert bitmap_bytes < set_bytes
    assert bitmap_bytes <= N // 8 + 1


@pytest.mark.benchmark(group="ablation-bitmap-kernels")
@pytest.mark.parametrize("impl", [Bitmap, SeedBitmap],
                         ids=["bigint", "seed-bytearray"])
def test_bulk_construct_speed(benchmark, impl):
    ids = make_ids(100_000, seed=5)
    result = benchmark(lambda: impl(ids))
    assert len(result) == len(ids)


@pytest.mark.benchmark(group="ablation-bitmap-kernels")
@pytest.mark.parametrize("impl", [Bitmap, SeedBitmap],
                         ids=["bigint", "seed-bytearray"])
def test_inplace_union_speed(benchmark, impl):
    a = impl(make_ids(100_000, seed=5))
    b = impl(make_ids(100_000, seed=6))

    def union():
        acc = impl()
        acc |= a
        acc |= b
        return acc

    result = benchmark(union)
    assert len(result) >= len(a)


@pytest.mark.benchmark(group="ablation-bitmap-kernels")
@pytest.mark.parametrize("impl", [Bitmap, SeedBitmap],
                         ids=["bigint", "seed-bytearray"])
def test_popcount_speed(benchmark, impl):
    bm = impl(make_ids(100_000, seed=5))
    count = benchmark(lambda: len(bm))
    assert count > 0


@pytest.mark.benchmark(group="ablation-bitmap-kernels-report")
def test_kernel_sweep_report(benchmark, record_report):
    """Big-int vs seed bytearray kernels at 10k/100k/1M id scales."""

    def ops(impl, ids_a, ids_b):
        construct, a = time_call(lambda: impl(ids_a))
        b = impl(ids_b)
        def inplace():
            acc = a.copy()
            acc |= b
            acc &= a
            acc -= b
            return acc
        algebra, _ = time_call(inplace)
        popcount, _ = time_call(lambda: len(a))
        return construct, algebra, popcount

    def sweep():
        rows = []
        for n in KERNEL_SCALES:
            ids_a, ids_b = make_ids(n, seed=5), make_ids(n, seed=6)
            rows.append((n, ops(Bitmap, ids_a, ids_b),
                         ops(SeedBitmap, ids_a, ids_b)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    results = []
    for n, new, old in rows:
        for label, new_t, old_t in zip(("construct", "in-place ops",
                                        "popcount"), new, old):
            results.append(BenchResult(
                f"n={n}: {label} speedup", old_t / max(new_t, 1e-9)))
    record_report(report(
        "Ablation A2: big-int vs seed bytearray kernels", results))

    # serialization must agree at every scale (the byte-identity criterion)
    for n in KERNEL_SCALES:
        ids = make_ids(n, seed=7)
        assert Bitmap(ids).to_bytes() == SeedBitmap(ids).to_bytes()
    # the whole point of the rewrite: algebra and popcount get faster, and
    # decisively so at the large scales (C loops vs Python byte loops)
    _n, new_big, old_big = rows[-1]
    assert new_big[1] < old_big[1], "in-place algebra must beat the seed"
    assert new_big[2] < old_big[2], "popcount must beat the seed"
