"""Ablation A — the paper's bitmap result representation vs Python sets.

The paper stores each directory's result as an N/8-byte bitmap, arguing it
is compact and fast to combine.  This ablation quantifies both claims in
our substrate: serialized size and intersection throughput against a plain
``set`` of ints at several result densities.
"""

import random

import pytest

from repro.bench.harness import BenchResult, report
from repro.util.bitmap import Bitmap

N = 20000
DENSITY = 0.3


def make_pair(seed):
    rng = random.Random(seed)
    members = {i for i in range(N) if rng.random() < DENSITY}
    return members, Bitmap(members)


@pytest.mark.benchmark(group="ablation-bitmap")
def test_bitmap_intersection_speed(benchmark):
    _m1, b1 = make_pair(1)
    _m2, b2 = make_pair(2)
    result = benchmark(lambda: b1 & b2)
    assert len(result) > 0


@pytest.mark.benchmark(group="ablation-bitmap")
def test_set_intersection_speed(benchmark):
    m1, _b1 = make_pair(1)
    m2, _b2 = make_pair(2)
    result = benchmark(lambda: m1 & m2)
    assert len(result) > 0


@pytest.mark.benchmark(group="ablation-bitmap-size")
def test_bitmap_size_claim(benchmark, record_report):
    def sizes():
        members, bitmap = make_pair(3)
        # a naive on-disk set: 4 bytes per member id
        set_bytes = 4 * len(members)
        return len(members), bitmap.nbytes, set_bytes

    count, bitmap_bytes, set_bytes = benchmark.pedantic(sizes, rounds=1,
                                                        iterations=1)
    results = [
        BenchResult("result members", count),
        BenchResult("bitmap bytes (N/8)", bitmap_bytes, N / 8),
        BenchResult("4-byte-id set bytes", set_bytes),
        BenchResult("compression vs id list", set_bytes / bitmap_bytes),
    ]
    record_report(report("Ablation A: bitmap vs set representation", results))
    # at 30% density the bitmap wins by ~10x; it loses only below ~3% density
    assert bitmap_bytes < set_bytes
    assert bitmap_bytes <= N // 8 + 1
