"""Ablation L — serving latency: barrier reads vs snapshot reads.

PR 5's batched maintenance made writes cheap but left every query behind
a pre-query barrier: a read arriving after a burst of writes first pays
to drain the whole pending batch.  The serving tier decouples them —
queries read the last *published* snapshot with zero barrier — and this
ablation measures what that buys under concurrent load.

An open-loop traffic generator (``repro.bench.serving``) schedules
Poisson arrivals across several sessions with a configurable read/write
mix and plays them through a single-server queue.  Service times are
*virtual*: deterministic work counters (device ops, tokenisations, docs
scanned) converted to milliseconds at fixed weights, so every asserted
ratio is pinned to counters and reproducible bit-for-bit.  Wall time for
the whole experiment is reported but never asserted (the PR 3 deflake
convention).

Asserted shape, for the monolith and a K=3 cluster:

* snapshot-mode reads perform **zero** scheduler drains (the counter, not
  a timing artefact);
* barrier-mode read p99 is at least **5x** snapshot-mode read p99 under
  the same write load — the barrier convoy collapses the tail while the
  snapshot path stays flat;
* both modes answer the probe queries identically once settled (the
  equivalence property suite covers the full interleaving space).
"""

import pytest

from repro.bench.harness import BenchResult, report, time_call
from repro.bench.serving import (CostMeter, ServingConfig, poisson_schedule,
                                 simulate, summarize)
from repro.cba.queryparser import parse_query
from repro.cluster import ClusterFactory
from repro.core.hacfs import HacFileSystem
from repro.shell.session import HacShell
from repro.workloads.mailgen import MailGenerator

SEED_DOCS = 24            # settled corpus before the open-loop phase
LIVE_DOCS = 16            # rotating hot files the write stream rewrites
QUERIES = ["fingerprint", "project", "fingerprint AND project",
           "budget OR deadline", "glimpse AND NOT lunch"]


def build_world(backend: str) -> HacShell:
    factory = (ClusterFactory(shards=3, latency=0.0)
               if backend == "cluster" else None)
    shell = HacShell(HacFileSystem(engine_factory=factory))
    hac = shell.hacfs
    hac.makedirs("/mail")
    gen = MailGenerator()
    for index in range(SEED_DOCS):
        hac.write_file(f"/mail/msg{index:04d}.txt",
                       gen.render(index).encode("utf-8"))
    hac.clock.tick()
    hac.ssync("/")
    hac.watch("/mail")
    hac.maintenance.set_mode("batched")
    return shell


def replica_counters(hac):
    """Replica-side counters, wherever replicas live (they attach lazily,
    so this is re-evaluated per measurement)."""
    engine = hac.engine
    shards = getattr(engine, "shards", None)
    if shards is not None:
        return [replica.counters for shard in shards.values()
                for replica in shard.engine.replicas]
    return [replica.counters for replica in engine.replicas]


def run_serving(shell: HacShell, consistency: str, config: ServingConfig):
    """Play one open-loop schedule; returns (samples, read-drain count)."""
    hac = shell.hacfs
    gen = MailGenerator()
    meter = CostMeter(lambda: [hac.counters] + replica_counters(hac))
    state = {"reads": 0, "writes": 0, "read_drains": 0.0}

    def execute(kind: str):
        if kind == "read":
            query = QUERIES[state["reads"] % len(QUERIES)]
            state["reads"] += 1
            before = hac.counters.get("sched.drains")
            hits = shell.glimpse(query, consistency=consistency)
            state["read_drains"] += hac.counters.get("sched.drains") - before
            return hits
        index = state["writes"]
        state["writes"] += 1
        hac.clock.tick()
        text = gen.render(SEED_DOCS + index) + f"revision {index}\n"
        return shell.write(f"/mail/live{index % LIVE_DOCS}.txt", text)

    samples = simulate(poisson_schedule(config), execute, meter)
    return samples, state["read_drains"]


def settled_answers(shell: HacShell):
    shell.hacfs.maintenance.barrier()
    return [shell.hacfs.engine.search(parse_query(q)).to_bytes()
            for q in QUERIES]


@pytest.mark.benchmark(group="serving")
def test_snapshot_reads_flatten_the_tail(benchmark, record_report,
                                         record_json, scale):
    config = ServingConfig(rate_per_s=200.0, duration_s=4.0 * scale,
                           read_fraction=0.75, sessions=4, seed=0)

    def run():
        out = {}
        for backend in ("monolith", "cluster"):
            per_mode = {}
            for consistency in ("strong", "snapshot"):
                shell = build_world(backend)
                secs, (samples, read_drains) = time_call(
                    lambda: run_serving(shell, consistency, config))
                per_mode[consistency] = {
                    "summary": summarize(samples),
                    "read_drains": read_drains,
                    "wall_s": secs,
                    "answers": settled_answers(shell),
                }
            out[backend] = per_mode
        return out

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    results = [BenchResult("arrival rate /s", config.rate_per_s),
               BenchResult("read fraction", config.read_fraction),
               BenchResult("sessions", config.sessions)]
    ratios = {}
    for backend, per_mode in measured.items():
        strong = per_mode["strong"]
        snap = per_mode["snapshot"]
        s_reads = strong["summary"]["read"]
        z_reads = snap["summary"]["read"]

        # --- correctness: both modes settle to identical answers ---------
        assert strong["answers"] == snap["answers"], backend

        # --- deterministic guards (counters, never wall time) ------------
        assert snap["read_drains"] == 0, (
            f"{backend}: snapshot reads must never drain "
            f"(saw {snap['read_drains']})")
        assert strong["read_drains"] > 0, (
            f"{backend}: barrier reads should be paying for drains — "
            f"the workload lost its contention")
        ratio = s_reads["p99_ms"] / max(z_reads["p99_ms"], 1e-9)
        ratios[backend] = ratio
        assert ratio >= 5.0, (
            f"{backend}: barrier-mode read p99 {s_reads['p99_ms']:.3f}ms is "
            f"only {ratio:.1f}x snapshot-mode {z_reads['p99_ms']:.3f}ms "
            f"(need >= 5x)")

        for mode, summary in (("barrier", s_reads), ("snapshot", z_reads)):
            results.extend([
                BenchResult(f"{backend} {mode} read p50", summary["p50_ms"],
                            unit="ms"),
                BenchResult(f"{backend} {mode} read p99", summary["p99_ms"],
                            unit="ms"),
                BenchResult(f"{backend} {mode} read p999",
                            summary["p999_ms"], unit="ms"),
            ])
        results.extend([
            BenchResult(f"{backend} p99 ratio (>= 5)", ratio),
            BenchResult(f"{backend} barrier read drains",
                        strong["read_drains"]),
            BenchResult(f"{backend} snapshot read drains",
                        snap["read_drains"]),
            BenchResult(f"{backend} snapshot saturation ops/s",
                        snap["summary"]["all"]["saturation_ops_per_s"]),
            BenchResult(f"{backend} barrier wall s", strong["wall_s"],
                        unit="s"),
            BenchResult(f"{backend} snapshot wall s", snap["wall_s"],
                        unit="s"),
        ])

    record_report(report("Ablation L: serving latency "
                         "(barrier vs snapshot reads)", results))
    record_json("serving", results, extra={
        "config": dict(config._asdict()),
        "p99_ratio": ratios,
        "latency_ms": {
            backend: {mode: {k: v for k, v in
                             per_mode[c]["summary"].items()}
                      for mode, c in (("barrier", "strong"),
                                      ("snapshot", "snapshot"))}
            for backend, per_mode in measured.items()},
    })
