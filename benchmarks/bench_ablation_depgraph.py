"""Ablation C — topological re-evaluation vs naive fixpoint iteration.

The paper insists on re-evaluating dependents "in the order obtained from a
topological sort of the dependency graph".  The alternative a naive system
would use — re-evaluate everything repeatedly until nothing changes —
does Θ(depth) passes over a dependency chain.  This ablation builds a chain
of semantic directories, perturbs the root, and counts re-evaluations under
both strategies.
"""

import pytest

from repro.bench.harness import BenchResult, report
from repro.core.hacfs import HacFileSystem

DEPTH = 8


def build_chain(depth):
    hac = HacFileSystem()
    hac.makedirs("/files")
    for i in range(6):
        hac.write_file(f"/files/f{i}.txt",
                       f"alpha beta level{i} data\n".encode())
    hac.clock.tick()
    hac.ssync("/")
    hac.smkdir("/c0", "alpha")
    for i in range(1, depth):
        # each directory refines the previous via an explicit reference
        hac.smkdir(f"/c{i}", f"alpha AND /c{i - 1}")
    return hac


def prohibit_in_c0(hac):
    """A pure curation change at the head of the chain, applied directly to
    the stored state (no automatic cascade): its effect can only reach the
    chain through link-set membership, which is exactly what makes
    re-evaluation order matter."""
    uid0 = hac.dirmap.uid_of("/c0")
    state = hac.meta.require(uid0)
    name = sorted(state.links.transient)[0]
    state.links.prohibit(name)
    hac.fs.unlink(f"/c0/{name}")
    hac.meta.flush(uid0)
    return uid0


def topo_reevaluations(hac, uid0):
    """Our algorithm: one visit per affected directory, providers first."""
    hac.counters.reset()
    hac.consistency.on_scope_changed([uid0], include_origins=True)
    return hac.counters.get("consistency.reevaluations")


def naive_reevaluations(hac):
    """Fixpoint iteration in pessimal (reverse) order, as an
    order-oblivious system would: sweep until nothing changes."""
    total = 0
    changed = True
    order = [hac.dirmap.uid_of(p) for p in sorted(hac.semantic_dirs(),
                                                  reverse=True)]
    while changed:
        changed = False
        for uid in order:
            total += 1
            if hac.consistency.reevaluate(uid):
                changed = True
    return total


@pytest.mark.benchmark(group="ablation-depgraph")
def test_topo_vs_naive(benchmark, record_report):
    def run():
        hac = build_chain(DEPTH)
        uid0 = prohibit_in_c0(hac)
        topo = topo_reevaluations(hac, uid0)

        hac2 = build_chain(DEPTH)
        prohibit_in_c0(hac2)
        naive = naive_reevaluations(hac2)

        # both strategies must land on the same final link sets
        final_topo = {p: sorted(hac.links(p)) for p in hac.semantic_dirs()}
        final_naive = {p: sorted(hac2.links(p)) for p in hac2.semantic_dirs()}
        return topo, naive, final_topo, final_naive

    topo, naive, final_topo, final_naive = benchmark.pedantic(
        run, rounds=1, iterations=1)
    results = [
        BenchResult("chain depth", DEPTH),
        BenchResult("re-evals, topological order", topo),
        BenchResult("re-evals, naive fixpoint", naive),
        BenchResult("naive / topo", naive / topo),
    ]
    record_report(report("Ablation C: topological vs fixpoint re-evaluation",
                         results))

    assert final_topo == final_naive, "strategies must agree on the result"
    assert topo == DEPTH, "one visit per chain member"
    # pessimal order fixes one level per pass: Θ(depth) full sweeps
    assert naive >= DEPTH * (DEPTH - 1), \
        "order-oblivious fixpoint must pay repeated passes on a chain"
