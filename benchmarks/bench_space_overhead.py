"""In-text space overheads from §4.

The paper reports, in prose: HAC's on-disk data structures cost 222 KB
where UNIX used 210 KB (~5 % more); each semantic directory stores its
result as an N/8-byte bitmap (~2 KB for 17 000 files); and the per-process
shared memory (attribute cache + descriptor table) is ~16 KB.

Shape to reproduce: metadata is a small percentage of the data it
describes; the stored result is *exactly* ceil(max-doc-id+1 / 8) bytes; the
per-process footprint is tens of KB, not MB.
"""

import pytest

from repro.bench.harness import BenchResult, report
from repro.bench.tables import PAPER, slowdown_pct
from repro.core.hacfs import HacFileSystem
from repro.workloads.andrew import AndrewBenchmark, AndrewConfig, RawFsAdapter
from repro.vfs.filesystem import FileSystem
from repro.workloads.corpus import CorpusConfig, CorpusGenerator

CFG = AndrewConfig(dirs=15, files_per_dir=10, functions_per_file=8)


def run():
    # --- metadata overhead on the Andrew tree ------------------------------
    unix_target = RawFsAdapter(FileSystem())
    AndrewBenchmark(unix_target, CFG).run()
    unix_bytes = unix_target.fs.device.used_bytes

    hac = HacFileSystem()
    AndrewBenchmark(hac, CFG).run()
    hac_data_bytes = hac.fs.device.used_bytes
    metadata_pct = 100.0 * hac.metadata_bytes() / unix_bytes

    # --- the N/8 bitmap -----------------------------------------------------
    corpus = HacFileSystem()
    gen = CorpusGenerator(CorpusConfig(n_files=1000, dirs=10,
                                       topics={"needle": 0.3}, seed=5))
    gen.populate(corpus, "/db")
    corpus.clock.tick()
    corpus.ssync("/")
    corpus.smkdir("/q", "needle")
    uid = corpus.dirmap.uid_of("/q")
    bitmap_bytes = corpus.meta.require(uid).result_cache.nbytes
    n_indexed = len(corpus.engine)

    # --- per-process shared memory ------------------------------------------
    for path, _node in __import__("repro.vfs.walker", fromlist=["walker"]) \
            .iter_files(corpus.fs, "/db"):
        corpus.stat(path)  # warm the attribute cache
    shared_bytes = corpus.shared_memory_bytes()

    return (unix_bytes, hac_data_bytes, metadata_pct,
            bitmap_bytes, n_indexed, shared_bytes)


@pytest.mark.benchmark(group="space")
def test_space_overheads(benchmark, record_report):
    (unix_bytes, hac_bytes, metadata_pct,
     bitmap_bytes, n_indexed, shared_bytes) = benchmark.pedantic(
        run, rounds=1, iterations=1)

    results = [
        BenchResult("UNIX device KB (Andrew tree)", unix_bytes / 1024,
                    PAPER["in_text"]["metadata_unix_kb"]),
        BenchResult("HAC device KB (same tree)", hac_bytes / 1024,
                    PAPER["in_text"]["metadata_hac_kb"]),
        BenchResult("HAC metadata as % of data", metadata_pct,
                    PAPER["in_text"]["metadata_overhead_pct"]),
        BenchResult("result bitmap bytes (N files)", bitmap_bytes,
                    PAPER["in_text"]["bitmap_example_kb"] * 1024),
        BenchResult("indexed files N", n_indexed),
        BenchResult("shared memory per process KB", shared_bytes / 1024,
                    PAPER["in_text"]["shared_memory_per_process_kb"]),
    ]
    record_report(report("In-text space overheads (§4)", results))

    # --- shape assertions ----------------------------------------------------
    assert 0 < metadata_pct < 60, \
        "HAC metadata must be a modest fraction of the file data"
    # the paper's N/8 rule, exactly: bits for the highest doc id in use
    assert bitmap_bytes <= (n_indexed + 7) // 8 + 1
    assert bitmap_bytes > 0
    assert shared_bytes < 64 * 1024, \
        "per-process footprint must stay in the tens of KB"
