"""Table 4 — semantic-directory creation vs direct Glimpse search.

Paper: creating a semantic directory for a query that matches *few* files
is >4× slower than the bare search (the constant cost of creating the
directory and its structures dominates); for an *intermediate* number of
matches the overhead drops to ~15 %, and for *many* matches to ~2 % — the
per-result work (which both sides share) swamps the constant.

Selectivity is dialled in with topic injection: three marker words planted
in ~0.5 %, ~5 % and ~50 % of the corpus files.  Shape to reproduce:
overhead ratio strictly decreasing in the number of matches, large for
"few", small for "many".

Wall-clock ratios are *reported* but the shape is *asserted* on simulated
device-op counts (record reads + writes), which are exactly reproducible on
any machine — a loaded CI runner cannot flake them.
"""

import pytest

from repro.bench.harness import (BenchResult, merge_breakdowns, report,
                                 time_call, traced_call)
from repro.bench.tables import PAPER, ratio
from repro.cba.queryparser import parse_query
from repro.core.hacfs import HacFileSystem
from repro.workloads.corpus import CorpusConfig, CorpusGenerator

TOPICS = {"rareword": 0.005, "midword": 0.05, "commonword": 0.5}
LABELS = {"rareword": "few", "midword": "intermediate", "commonword": "many"}

#: the simulated cost of one timed call: every block-device record
#: operation it performed (reads for the scan, data + metadata writes for
#: directory structures, links, and the WAL)
OP_KEYS = ("blockdev.read_ops", "blockdev.write_ops",
           "blockdev.meta_read_ops", "blockdev.meta_write_ops")


def _op_cost(hac) -> float:
    return sum(hac.counters.get(k) for k in OP_KEYS)


def build_world(scale):
    cfg = CorpusConfig(n_files=800 * scale, words_per_file=250, dirs=20,
                       topics=TOPICS, seed=9)
    gen = CorpusGenerator(cfg)
    # many small blocks, as in real Glimpse deployments: selective queries
    # scan only a handful of candidate files.  Fast path off: this table
    # compares against the real Glimpse binary's scan behaviour, and the
    # doc-postings path would answer the term queries without scanning at
    # all (bench_ablation_fastpath quantifies that separately)
    hac = HacFileSystem(num_blocks=512, fast_path=False)
    gen.populate(hac, "/db")
    hac.clock.tick()
    hac.ssync("/")
    return hac, gen


def measure(hac, topic, repetitions=3):
    """One topic's measurements: wall seconds (min over repetitions),
    deterministic op costs (first repetition), span breakdowns, matches.

    The query cache is cleared before every timed call: the comparison is
    against the real Glimpse binary, which starts cold per invocation.
    """
    ast = parse_query(topic)

    def direct_once():
        hac.engine.clear_query_cache()
        return time_call(lambda: hac.engine.search(ast))[0]

    hac.engine.clear_query_cache()
    ops0 = _op_cost(hac)
    first, _, direct_spans = traced_call(hac.obs,
                                         lambda: hac.engine.search(ast))
    direct_ops = _op_cost(hac) - ops0
    direct = min([first] + [direct_once() for _ in range(repetitions - 1)])

    smkdir_times = []
    smkdir_ops = smkdir_spans = None
    for rep in range(repetitions):
        hac.engine.clear_query_cache()
        if rep == 0:
            ops0 = _op_cost(hac)
            secs, _, smkdir_spans = traced_call(
                hac.obs, lambda: hac.smkdir(f"/q-{topic}-{rep}", topic))
            smkdir_ops = _op_cost(hac) - ops0
        else:
            secs, _ = time_call(lambda: hac.smkdir(f"/q-{topic}-{rep}", topic))
        smkdir_times.append(secs)
    matches = len(hac.engine.search(ast))
    return {"direct": direct, "smkdir": min(smkdir_times),
            "direct_ops": direct_ops, "smkdir_ops": smkdir_ops,
            "direct_spans": direct_spans, "smkdir_spans": smkdir_spans,
            "matches": matches}


@pytest.mark.benchmark(group="table4")
def test_table4_query_overhead(benchmark, record_report, record_json, scale):
    def run():
        hac, _gen = build_world(scale)
        return {topic: measure(hac, topic) for topic in TOPICS}

    data = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=1)

    results = []
    ratios = {}
    op_ratios = {}
    for topic in ("rareword", "midword", "commonword"):
        m = data[topic]
        label = LABELS[topic]
        ratios[label] = ratio(m["smkdir"], m["direct"])
        op_ratios[label] = ratio(m["smkdir_ops"], m["direct_ops"])
        paper = PAPER["table4"][label]["ratio"]
        results.append(BenchResult(f"{label}: files matched", m["matches"]))
        results.append(BenchResult(f"{label}: direct search s", m["direct"],
                                   spans=m["direct_spans"]))
        results.append(BenchResult(f"{label}: smkdir s", m["smkdir"],
                                   spans=m["smkdir_spans"]))
        results.append(BenchResult(f"{label}: smkdir/search ratio",
                                   ratios[label], paper))
        results.append(BenchResult(f"{label}: smkdir/search device ops",
                                   op_ratios[label]))
    record_report(report(
        "Table 4: semantic directory creation vs direct search", results))
    record_json("table4_queries", results,
                spans=merge_breakdowns(*(data[t][k] for t in TOPICS
                                         for k in ("direct_spans",
                                                   "smkdir_spans"))))
    benchmark.extra_info.update({k: round(v, 2) for k, v in ratios.items()})

    # --- shape assertions ----------------------------------------------------
    # asserted on simulated device-op counts, which are exactly reproducible
    # (wall ratios above are reported for comparison with the paper only —
    # on a loaded shared CPU they flake)
    shape = (f"{op_ratios['few']:.2f} / {op_ratios['intermediate']:.2f} / "
             f"{op_ratios['many']:.2f}")
    # the dominant signal: few-match queries pay the constant cost hard
    assert op_ratios["few"] > op_ratios["intermediate"] * 1.2, \
        f"few-match overhead must stand clear of the rest: {shape}"
    assert op_ratios["few"] > op_ratios["many"] * 1.2, \
        f"few-match overhead must stand clear of the rest: {shape}"
    # the tail flattens: per-result work (shared scan + one link write per
    # match) swamps the constant directory cost
    assert op_ratios["many"] <= op_ratios["intermediate"] * 1.15, \
        f"the tail must not grow with match count: {shape}"
    # the paper sees 4x for "few"; in op counts the constant cost (journal,
    # directory records, metadata flush) is ~5x the four-file scan
    assert op_ratios["few"] > 3.0, \
        "few matches: the constant directory-creation cost should dominate"
    # each of the ~400 matches costs a scan read on both sides plus one
    # symlink metadata write on the smkdir side — the ratio sits near 2,
    # far below the few-match constant-cost blow-up
    assert op_ratios["many"] < 2.0, \
        "many matches: per-result work should swamp the constant cost"
