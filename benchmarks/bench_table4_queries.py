"""Table 4 — semantic-directory creation vs direct Glimpse search.

Paper: creating a semantic directory for a query that matches *few* files
is >4× slower than the bare search (the constant cost of creating the
directory and its structures dominates); for an *intermediate* number of
matches the overhead drops to ~15 %, and for *many* matches to ~2 % — the
per-result work (which both sides share) swamps the constant.

Selectivity is dialled in with topic injection: three marker words planted
in ~0.5 %, ~5 % and ~50 % of the corpus files.  Shape to reproduce:
overhead ratio strictly decreasing in the number of matches, large for
"few", small for "many".
"""

import pytest

from repro.bench.harness import BenchResult, report, time_call
from repro.bench.tables import PAPER, ratio
from repro.cba.queryparser import parse_query
from repro.core.hacfs import HacFileSystem
from repro.workloads.corpus import CorpusConfig, CorpusGenerator

TOPICS = {"rareword": 0.005, "midword": 0.05, "commonword": 0.5}
LABELS = {"rareword": "few", "midword": "intermediate", "commonword": "many"}


def build_world(scale):
    cfg = CorpusConfig(n_files=800 * scale, words_per_file=250, dirs=20,
                       topics=TOPICS, seed=9)
    gen = CorpusGenerator(cfg)
    # many small blocks, as in real Glimpse deployments: selective queries
    # scan only a handful of candidate files.  Fast path off: this table
    # compares against the real Glimpse binary's scan behaviour, and the
    # doc-postings path would answer the term queries without scanning at
    # all (bench_ablation_fastpath quantifies that separately)
    hac = HacFileSystem(num_blocks=512, fast_path=False)
    gen.populate(hac, "/db")
    hac.clock.tick()
    hac.ssync("/")
    return hac, gen


def measure(hac, topic, repetitions=3):
    """(direct search seconds, smkdir seconds, matches) for one topic.

    The query cache is cleared before every timed call: the comparison is
    against the real Glimpse binary, which starts cold per invocation.
    """
    ast = parse_query(topic)

    def direct_once():
        hac.engine.clear_query_cache()
        return time_call(lambda: hac.engine.search(ast))[0]

    direct = min(direct_once() for _ in range(repetitions))
    smkdir_times = []
    for rep in range(repetitions):
        hac.engine.clear_query_cache()
        secs, _ = time_call(lambda: hac.smkdir(f"/q-{topic}-{rep}", topic))
        smkdir_times.append(secs)
    matches = len(hac.engine.search(ast))
    return direct, min(smkdir_times), matches


@pytest.mark.benchmark(group="table4")
def test_table4_query_overhead(benchmark, record_report, scale):
    def run():
        hac, _gen = build_world(scale)
        return {topic: measure(hac, topic) for topic in TOPICS}

    data = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=1)

    results = []
    ratios = {}
    for topic in ("rareword", "midword", "commonword"):
        direct, smkdir, matches = data[topic]
        label = LABELS[topic]
        ratios[label] = ratio(smkdir, direct)
        paper = PAPER["table4"][label]["ratio"]
        results.append(BenchResult(f"{label}: files matched", matches))
        results.append(BenchResult(f"{label}: direct search s", direct))
        results.append(BenchResult(f"{label}: smkdir s", smkdir))
        results.append(BenchResult(f"{label}: smkdir/search ratio",
                                   ratios[label], paper))
    record_report(report(
        "Table 4: semantic directory creation vs direct search", results))
    benchmark.extra_info.update({k: round(v, 2) for k, v in ratios.items()})

    # --- shape assertions ----------------------------------------------------
    # the dominant signal: few-match queries pay the constant cost hard
    shape = (f"{ratios['few']:.2f} / {ratios['intermediate']:.2f} / "
             f"{ratios['many']:.2f}")
    assert ratios["few"] > ratios["intermediate"] * 1.2, \
        f"few-match overhead must stand clear of the rest: {shape}"
    assert ratios["few"] > ratios["many"] * 1.2, \
        f"few-match overhead must stand clear of the rest: {shape}"
    # the tail flattens toward 1; intermediate vs many sit within noise of
    # each other in our substrate (the paper: 1.15 vs 1.02), so require
    # flat-to-decreasing rather than strictly decreasing
    assert ratios["many"] <= ratios["intermediate"] * 1.15, \
        f"the tail must not grow with match count: {shape}"
    # the paper sees 4x for "few"; our simulated disk has no seek latency,
    # so the constant directory-creation cost is relatively smaller
    assert ratios["few"] > 1.25, \
        "few matches: the constant directory-creation cost should dominate"
    assert ratios["many"] < 1.3, \
        "many matches: per-result work should swamp the constant cost"
