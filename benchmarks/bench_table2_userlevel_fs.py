"""Table 2 — Andrew slowdown of user-level file systems vs the native FS.

Paper: Jade 36 %, Pseudo 33.41 %, HAC 46 %.  Shape to reproduce: all three
interposition styles cost the same order of magnitude, and HAC costs the
most, because on top of forwarding it maintains the content-access
structures (global map, per-directory records, dependency graph).
"""

import pytest

from repro.baselines.jadefs import JadeFileSystem
from repro.baselines.pseudofs import PseudoFileSystem
from repro.bench.harness import assert_shape, report
from repro.bench.harness import BenchResult
from repro.bench.tables import PAPER, slowdown_pct
from repro.core.hacfs import HacFileSystem
from repro.vfs.filesystem import FileSystem
from repro.workloads.andrew import AndrewBenchmark, AndrewConfig, RawFsAdapter

# interposition cost shows in the metadata/IO phases, so this tree is
# wider and its "compilation units" smaller than Table 1's
CFG = AndrewConfig(dirs=20, files_per_dir=12, functions_per_file=3)


def run_all(repetitions: int = 5):
    import gc

    def total(make_target):
        # min of several fresh runs filters scheduler/GC noise
        return min(AndrewBenchmark(make_target(), CFG).run()["total"]
                   for _ in range(repetitions))

    gc.collect()
    gc.disable()
    try:
        return {
            "unix": total(lambda: RawFsAdapter(FileSystem())),
            "jade": total(lambda: JadeFileSystem(FileSystem())),
            "pseudo": total(lambda: PseudoFileSystem(FileSystem())),
            "hac": total(lambda: HacFileSystem()),
        }
    finally:
        gc.enable()


@pytest.mark.benchmark(group="table2")
def test_table2_userlevel_slowdowns(benchmark, record_report):
    totals = benchmark.pedantic(run_all, rounds=1, iterations=1,
                                warmup_rounds=1)
    slow = {name: slowdown_pct(totals[name], totals["unix"])
            for name in ("jade", "pseudo", "hac")}
    results = [
        BenchResult("Jade FS % slowdown", slow["jade"], PAPER["table2"]["jade"]),
        BenchResult("Pseudo FS % slowdown", slow["pseudo"], PAPER["table2"]["pseudo"]),
        BenchResult("HAC FS % slowdown", slow["hac"], PAPER["table2"]["hac"]),
    ]
    record_report(report("Table 2: user-level FS slowdown vs native", results))
    benchmark.extra_info.update({k: round(v, 2) for k, v in slow.items()})

    # --- shape assertions ----------------------------------------------------
    # every interposition layer costs something
    for name in ("jade", "pseudo", "hac"):
        assert slow[name] > 0, f"{name} should be slower than the native FS"
    # HAC pays the most: it also maintains CBA structures (the paper's point)
    assert slow["hac"] > slow["jade"], \
        f"HAC ({slow['hac']:.1f}%) should exceed Jade ({slow['jade']:.1f}%)"
    assert slow["hac"] > slow["pseudo"], \
        f"HAC ({slow['hac']:.1f}%) should exceed Pseudo ({slow['pseudo']:.1f}%)"
    # same order of magnitude as the paper's user-level systems
    assert_shape("HAC slowdown percent", slow["hac"], 2.0, 400.0)
