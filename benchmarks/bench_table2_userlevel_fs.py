"""Table 2 — Andrew slowdown of user-level file systems vs the native FS.

Paper: Jade 36 %, Pseudo 33.41 %, HAC 46 %.  Shape to reproduce: all three
interposition styles cost the same order of magnitude, and HAC costs the
most, because on top of forwarding it maintains the content-access
structures (global map, per-directory records, dependency graph).

Wall-clock slowdowns are *reported* but the shape is *asserted* on exactly
reproducible counters: Jade/Pseudo must forward the native device-op
schedule unchanged while charging interposition work (path translations,
RPC round trips), and HAC must perform strictly more device operations —
the content-access structures are real extra I/O, not just Python
overhead a loaded CI runner could blur away.
"""

import pytest

from repro.baselines.jadefs import JadeFileSystem
from repro.baselines.pseudofs import PseudoFileSystem
from repro.bench.harness import report
from repro.bench.harness import BenchResult
from repro.bench.tables import PAPER, ratio, slowdown_pct
from repro.core.hacfs import HacFileSystem
from repro.vfs.filesystem import FileSystem
from repro.workloads.andrew import AndrewBenchmark, AndrewConfig, RawFsAdapter

# interposition cost shows in the metadata/IO phases, so this tree is
# wider and its "compilation units" smaller than Table 1's
CFG = AndrewConfig(dirs=20, files_per_dir=12, functions_per_file=3)

#: the simulated cost of one Andrew run: every block-device record
#: operation (pure forwarding layers repeat the native schedule exactly)
OP_KEYS = ("blockdev.read_ops", "blockdev.write_ops",
           "blockdev.meta_read_ops", "blockdev.meta_write_ops")


def run_all(repetitions: int = 5):
    import gc

    def total(make_target, counters_of):
        """(min wall seconds, device ops, counters) over fresh runs."""
        best = ops = counters = None
        for rep in range(repetitions):
            fs = make_target()
            secs = AndrewBenchmark(fs, CFG).run()["total"]
            best = secs if best is None else min(best, secs)
            if rep == 0:  # deterministic: any repetition charges the same
                counters = counters_of(fs)
                ops = sum(counters.get(k) for k in OP_KEYS)
        return best, ops, counters

    gc.collect()
    gc.disable()
    try:
        return {
            "unix": total(lambda: RawFsAdapter(FileSystem()),
                          lambda fs: fs.fs.counters),
            "jade": total(lambda: JadeFileSystem(FileSystem()),
                          lambda fs: fs.counters),
            "pseudo": total(lambda: PseudoFileSystem(FileSystem()),
                            lambda fs: fs.counters),
            "hac": total(lambda: HacFileSystem(),
                         lambda fs: fs.counters),
        }
    finally:
        gc.enable()


@pytest.mark.benchmark(group="table2")
def test_table2_userlevel_slowdowns(benchmark, record_report):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1,
                              warmup_rounds=1)
    totals = {name: secs for name, (secs, _ops, _c) in data.items()}
    ops = {name: o for name, (_secs, o, _c) in data.items()}
    slow = {name: slowdown_pct(totals[name], totals["unix"])
            for name in ("jade", "pseudo", "hac")}
    translations = data["jade"][2].get("jade.translations")
    requests = data["pseudo"][2].get("pseudo.requests")
    results = [
        BenchResult("Jade FS % slowdown", slow["jade"], PAPER["table2"]["jade"]),
        BenchResult("Pseudo FS % slowdown", slow["pseudo"], PAPER["table2"]["pseudo"]),
        BenchResult("HAC FS % slowdown", slow["hac"], PAPER["table2"]["hac"]),
        BenchResult("Jade path translations", translations),
        BenchResult("Pseudo RPC round trips", requests),
        BenchResult("HAC/native device-op ratio", ratio(ops["hac"], ops["unix"])),
    ]
    record_report(report("Table 2: user-level FS slowdown vs native", results))
    benchmark.extra_info.update({k: round(v, 2) for k, v in slow.items()})

    # --- shape assertions ----------------------------------------------------
    # asserted on simulated counters, which are exactly reproducible (wall
    # slowdowns above are reported for comparison with the paper only — on
    # a loaded shared CPU they flake)
    # Jade/Pseudo are pure forwarders: same device schedule, plus real
    # interposition work on every Andrew operation
    assert ops["jade"] == ops["unix"], (ops["jade"], ops["unix"])
    assert ops["pseudo"] == ops["unix"], (ops["pseudo"], ops["unix"])
    assert translations > 1000, \
        "Jade should translate a path per forwarded operation"
    assert requests > 1000, \
        "Pseudo should pay an RPC round trip per forwarded operation"
    # HAC pays the most: the CBA structures (global map, per-directory
    # records, WAL) are extra device I/O on top of forwarding — measured
    # ~1.5x the native schedule on this tree
    assert ops["hac"] > ops["unix"] * 1.2, (ops["hac"], ops["unix"])
    assert ops["hac"] > ops["jade"] and ops["hac"] > ops["pseudo"]
