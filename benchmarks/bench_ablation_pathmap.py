"""Ablation N — folding the tree into a map, and reindex-as-merge.

Two storage-plane claims from DESIGN.md §3i, measured on the same
corpus shapes the other ablations use:

* **Path map**: resolving a deep path by component walk costs one step
  per component; the map answers warmed resolutions with a single hash
  probe.  Counted in ``vfs.walk_steps`` (deterministic), reported in
  wall seconds.
* **Segment plane**: recovery with persisted segments folds rows back
  into the index with zero tokenisation, while a rebuild re-reads and
  re-tokenises the whole corpus.  Counted in ``engine.tokenisations``.
"""

import pytest

from repro.bench.harness import BenchResult, report, time_call
from repro.core.hacfs import HacFileSystem
from repro.vfs.filesystem import FileSystem
from repro.workloads.corpus import CorpusConfig, CorpusGenerator

DEPTH = 8
FANOUT = 3
ROUNDS = 5
N_FILES = 400


def build_deep_fs(path_map: bool):
    """A depth-8 tree with files at every level — the worst case for
    component-wise ``namei`` and the best for the map."""
    fs = FileSystem(path_map=path_map)
    leaves = []
    stack = [("", 0)]
    while stack:
        prefix, depth = stack.pop()
        if depth == DEPTH:
            continue
        for i in range(FANOUT if depth < 3 else 1):
            path = f"{prefix}/d{depth}_{i}"
            fs.mkdir(path)
            fpath = f"{path}/f.txt"
            fs.write_file(fpath, b"payload")
            leaves.append(fpath)
            stack.append((path, depth + 1))
    return fs, leaves


def resolve_workload(fs, leaves):
    for _ in range(ROUNDS):
        for path in leaves:
            fs.stat(path)


@pytest.mark.benchmark(group="ablation-pathmap")
def test_map_vs_walk_resolution(benchmark, record_report, record_json):
    def run():
        out = {}
        for label, mapped in (("walk", False), ("map", True)):
            fs, leaves = build_deep_fs(mapped)
            resolve_workload(fs, leaves)  # warm (and equalize) both worlds
            steps0 = fs.counters.get("vfs.walk_steps")
            secs, _ = time_call(lambda: resolve_workload(fs, leaves))
            out[label] = (secs,
                          fs.counters.get("vfs.walk_steps") - steps0,
                          fs.counters.get("pathmap.hit"),
                          len(leaves))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=1)
    (walk_s, walk_steps, _h, n_paths) = out["walk"]
    (map_s, map_steps, map_hits, _n) = out["map"]

    results = [
        BenchResult("paths resolved per round", n_paths),
        BenchResult("resolution rounds", ROUNDS),
        BenchResult("walk-only steps", walk_steps),
        BenchResult("path-map steps", map_steps),
        # a fully-warmed map walks zero steps; clamp the denominator so
        # the ratio stays a finite (JSON-clean) lower bound
        BenchResult("walk / map step ratio",
                    walk_steps / max(map_steps, 1)),
        BenchResult("path-map hits", map_hits),
        BenchResult("walk-only s", walk_s),
        BenchResult("path-map s", map_s),
    ]
    record_report(report("Ablation N: path resolution — component walk "
                         "vs folded map", results))
    record_json("ablation_pathmap", results)

    # the contract: a warmed map resolves without re-walking — at least
    # 2x fewer steps than namei (in practice it is ~steps-per-path x)
    assert map_steps * 2 <= walk_steps, (
        f"path map shed too few walk steps: {map_steps} vs {walk_steps}")
    assert map_hits >= n_paths * ROUNDS, "warmed resolutions missed the map"


def build_corpus_world():
    gen = CorpusGenerator(CorpusConfig(n_files=N_FILES, words_per_file=120,
                                       dirs=12, seed=77))
    hac = HacFileSystem()
    gen.populate(hac, "/db")
    hac.clock.tick()
    hac.ssync("/")
    hac.smkdir("/q", "data OR file")
    hac.reindex()  # seals + compacts: the segment list now covers /db
    return hac


@pytest.mark.benchmark(group="ablation-pathmap")
def test_segment_merge_vs_rebuild_recovery(benchmark, record_report,
                                           record_json):
    def run():
        merge_world = build_corpus_world()
        merge_s, merged = time_call(
            lambda: HacFileSystem.restore(merge_world.fs))
        merge_tok = merged.counters.get("engine.tokenisations")
        merge_docs = merged.counters.get("engine.restored_docs")

        rebuild_world = build_corpus_world()
        rebuild_s, rebuilt = time_call(
            lambda: HacFileSystem.restore(rebuild_world.fs,
                                          segmented=False))
        rebuild_tok = rebuilt.counters.get("engine.tokenisations")
        return merge_s, merge_tok, merge_docs, rebuild_s, rebuild_tok

    (merge_s, merge_tok, merge_docs, rebuild_s,
     rebuild_tok) = benchmark.pedantic(run, rounds=1, iterations=1,
                                       warmup_rounds=1)

    results = [
        BenchResult("corpus files", N_FILES),
        BenchResult("segment-merge restore s", merge_s),
        BenchResult("rebuild restore s", rebuild_s),
        BenchResult("tokenisations (segment merge)", merge_tok),
        BenchResult("tokenisations (rebuild)", rebuild_tok),
        BenchResult("docs folded from segments", merge_docs),
    ]
    record_report(report("Ablation N2: recovery — segment merge vs "
                         "rebuild", results))
    record_json("ablation_pathmap_segments", results)

    # reindex-as-merge: recovery folds persisted term sets back without
    # running the tokenizer; a rebuild re-tokenises every document
    assert merge_tok < rebuild_tok, (
        f"segment merge should out-tokenise a rebuild: "
        f"{merge_tok} vs {rebuild_tok}")
    assert merge_tok == 0, "segment restore ran the tokenizer"
    assert merge_docs >= N_FILES
    assert rebuild_tok >= N_FILES
