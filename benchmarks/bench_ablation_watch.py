"""Ablation E — lazy (§2.4) vs eager (watch) data consistency.

The paper chooses lazy data consistency because "the extra cost
(determining when files have changed, re-indexing files automatically,
etc.) will not warrant it" for typical file systems.  The watch extension
implements the eager alternative; this ablation measures the choice: total
cost of a write burst under each policy, and the per-write price of
freshness.
"""

import pytest

from repro.bench.harness import BenchResult, report, time_call
from repro.core.hacfs import HacFileSystem
from repro.workloads.corpus import CorpusConfig, CorpusGenerator

N_FILES = 300
BURST = 60


def build():
    gen = CorpusGenerator(CorpusConfig(n_files=N_FILES, words_per_file=80,
                                       dirs=8, topics={"hotword": 0.1},
                                       seed=31))
    hac = HacFileSystem()
    gen.populate(hac, "/db")
    hac.makedirs("/inbox")
    hac.clock.tick()
    hac.ssync("/")
    hac.smkdir("/hot", "hotword")
    return hac


def write_burst(hac):
    for i in range(BURST):
        hac.clock.tick()
        hac.write_file(f"/inbox/new{i:03d}.txt",
                       f"message {i} with hotword inside\n".encode())


@pytest.mark.benchmark(group="ablation-watch")
def test_lazy_vs_eager(benchmark, record_report):
    def run():
        lazy = build()
        lazy_burst, _ = time_call(lambda: write_burst(lazy))
        stale = "new000.txt" not in lazy.listdir("/hot")
        lazy_sync, _ = time_call(lambda: lazy.ssync("/"))
        lazy_fresh = "new000.txt" in lazy.listdir("/hot")

        eager = build()
        eager.watch("/inbox")
        eager_burst, _ = time_call(lambda: write_burst(eager))
        eager_fresh = "new000.txt" in eager.listdir("/hot")
        return (lazy_burst, lazy_sync, stale, lazy_fresh,
                eager_burst, eager_fresh)

    (lazy_burst, lazy_sync, stale, lazy_fresh,
     eager_burst, eager_fresh) = benchmark.pedantic(run, rounds=1,
                                                    iterations=1,
                                                    warmup_rounds=1)
    lazy_total = lazy_burst + lazy_sync
    results = [
        BenchResult("writes in burst", BURST),
        BenchResult("lazy: burst s", lazy_burst),
        BenchResult("lazy: final ssync s", lazy_sync),
        BenchResult("lazy: total s", lazy_total),
        BenchResult("eager: burst (incl. reindex) s", eager_burst),
        BenchResult("eager per-write ms", 1000 * eager_burst / BURST),
        BenchResult("lazy per-write ms (burst only)",
                    1000 * lazy_burst / BURST),
        BenchResult("eager / lazy total", eager_burst / lazy_total),
    ]
    record_report(report("Ablation E: lazy vs eager data consistency",
                         results))

    # --- shape assertions ----------------------------------------------------
    assert stale and lazy_fresh, \
        "lazy policy: results stale during the burst, fresh after ssync"
    assert eager_fresh, "eager policy: results fresh after every write"
    assert eager_burst > lazy_burst, \
        "freshness must cost something per write"
    # ...but eager per-write work is incremental, far below one full ssync
    assert (eager_burst / BURST) < lazy_sync, \
        "one eager update must cost less than a full lazy sync"
