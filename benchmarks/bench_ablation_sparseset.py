"""Ablation F — flat N/8 bitmap vs sparse-set representation (§4 future work).

The paper stores each semantic directory's result as N/8 bytes and notes it
"plan[s] to improve this in future by using better sparse-set
representations, so that it is possible to index a very large number of
files."  This ablation implements the comparison: stored bytes per result
across densities over a large id space, plus intersection speed at both
extremes.
"""

import random

import pytest

from repro.bench.harness import BenchResult, report
from repro.util.bitmap import Bitmap
from repro.util.sparseset import SparseSet

N = 1_000_000          # "a very large number of files"
DENSITIES = (0.00001, 0.001, 0.1)


def make(density, seed):
    rng = random.Random(seed)
    count = max(1, int(N * density))
    return sorted(rng.sample(range(N), count))


@pytest.mark.benchmark(group="ablation-sparse-size")
def test_size_by_density(benchmark, record_report):
    def run():
        rows = []
        for density in DENSITIES:
            members = make(density, seed=1)
            rows.append((density, len(members),
                         Bitmap(members).nbytes, SparseSet(members).nbytes))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    results = []
    for density, count, flat, sparse in rows:
        results.append(BenchResult(
            f"density {density:g} ({count} ids): flat N/8 bytes", flat))
        results.append(BenchResult(
            f"density {density:g}: sparse bytes", sparse))
    record_report(report(
        "Ablation F: flat bitmap vs sparse set over 1M-file id space",
        results))

    by_density = {d: (flat, sparse) for d, _c, flat, sparse in rows}
    # sparse wins by orders of magnitude at low density...
    flat, sparse = by_density[0.00001]
    assert sparse * 50 < flat, f"sparse {sparse}B should crush flat {flat}B"
    # ...and never degenerates beyond a small constant factor when dense
    flat, sparse = by_density[0.1]
    assert sparse < flat * 1.2, \
        "dense chunks must cap at the bitmap representation"


@pytest.mark.benchmark(group="ablation-sparse-ops")
def test_flat_intersection_dense(benchmark):
    a, b = Bitmap(make(0.1, 1)), Bitmap(make(0.1, 2))
    benchmark(lambda: a & b)


@pytest.mark.benchmark(group="ablation-sparse-ops")
def test_sparse_intersection_sparse_data(benchmark):
    a, b = SparseSet(make(0.0001, 1)), SparseSet(make(0.0001, 2))
    benchmark(lambda: a & b)


@pytest.mark.benchmark(group="ablation-sparse-ops")
def test_flat_intersection_sparse_data(benchmark):
    # the flat representation must still walk max-id/8 bytes even when
    # almost nothing is set — the cost the sparse layout avoids
    a, b = Bitmap(make(0.0001, 1)), Bitmap(make(0.0001, 2))
    benchmark(lambda: a & b)
