"""Chaos soak sweep + the admission-control A/B demonstration.

Two experiments, both pinned to deterministic counters (the PR 3
deflake convention: wall time is reported, never asserted):

**Soak sweep** — three seeds x {monolith, K=3} full ``ChaosRun`` soaks.
Every run must hold all seven convergence-window invariants, including
the bit-identical state digest against its fault-free oracle world.

**Admission A/B** — one clustered world per arm, same deterministic
script: publish a full snapshot, kill a shard, trip its breaker with
three strong reads, then issue a write burst.

* gate **off** (the failure the policy prevents): strong reads silently
  return *partial* answers (``cluster.partial_results`` counts them, and
  the hit set is a strict subset of the published snapshot's), and the
  maintenance queue grows past any bound while its drains fail;
* gate **on**: every strong read is downgraded to the snapshot path —
  complete as-of-publish answers, zero new partials — and the write
  burst is shed once the queue reaches ``max_queue_depth``, so the
  queue stays bounded.  Snapshot reads keep serving in both arms.
"""

import pytest

from repro.bench.harness import BenchResult, report, time_call
from repro.chaos import ChaosRun, ChaosWorld
from repro.errors import AdmissionRejected

SOAK_SEEDS = (1, 2, 3)
SOAK_STEPS = 40
QUEUE_DEPTH = 8
WRITE_BURST = 12
VICTIM = "shard0"


def run_admission_arm(enabled: bool) -> dict:
    """One arm of the A/B: returns the counters the asserts pin."""
    world = ChaosWorld(k=3, batched=True, admission=False,
                       max_queue_depth=QUEUE_DEPTH)
    hac = world.hac
    world.shell.ssync("/")
    hac.maintenance.publish()
    snapshot_hits = world.shell.glimpse("fingerprint",
                                        consistency="snapshot")
    hac.engine.kill_shard(VICTIM)
    # trip the victim's breaker the same way in both arms: three live
    # scatters against the dead shard (the gate is enabled only after,
    # so the downgrade decision really runs "under an open breaker")
    pre_trip_partials = hac.counters.get("cluster.partial_results")
    for _ in range(3):
        world.shell.glimpse("fingerprint", consistency="strong")
    trip_partials = hac.counters.get("cluster.partial_results") \
        - pre_trip_partials
    assert hac.engine.breakers()[VICTIM].state == "open"
    if enabled:
        hac.admission.max_queue_depth = QUEUE_DEPTH
        hac.admission.enable()

    base_partials = hac.counters.get("cluster.partial_results")
    strong_hits = world.shell.glimpse("fingerprint", consistency="strong")
    read_partials = hac.counters.get("cluster.partial_results") \
        - base_partials
    shed = 0
    for index in range(WRITE_BURST):
        try:
            hac.write_file(f"/notes/burst{index:02d}.txt",
                           b"fingerprint burst traffic\n")
        except AdmissionRejected:
            shed += 1
    status = hac.admission.status()
    return {
        "snapshot_hits": snapshot_hits,
        "strong_hits": strong_hits,
        "still_serving": world.shell.glimpse("fingerprint",
                                             consistency="snapshot"),
        "trip_partials": trip_partials,
        "read_partials": read_partials,
        "shed": shed,
        "pending": hac.maintenance.pending,
        "downgraded_reads": int(status["downgraded_reads"]),
        "shed_writes": int(status["shed_writes"]),
    }


@pytest.mark.benchmark(group="chaos")
def test_chaos_soak_and_admission_ab(benchmark, record_report, record_json):
    def run():
        soaks = []
        for seed in SOAK_SEEDS:
            for k in (0, 3):
                run_ = ChaosRun(seed=seed, k=k, steps=SOAK_STEPS, windows=2)
                secs, rep = time_call(run_.run)
                rep["wall_s"] = secs
                soaks.append(rep)
        arms = {"off": run_admission_arm(False),
                "on": run_admission_arm(True)}
        return {"soaks": soaks, "arms": arms}

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    # --- the sweep: every seed x topology holds every invariant ----------
    results = []
    for rep in measured["soaks"]:
        label = f"seed {rep['seed']} k={rep['k']}"
        assert rep["ok"], f"{label}: {rep['violations']}"
        assert rep["recoveries"] == rep["crashes_hit"], label
        results.extend([
            BenchResult(f"{label} applied", rep["applied"]),
            BenchResult(f"{label} crashes recovered", rep["recoveries"]),
            BenchResult(f"{label} violations", len(rep["violations"])),
            BenchResult(f"{label} wall s", rep["wall_s"], unit="s"),
        ])

    # --- the A/B: what the gate prevents, on deterministic counters ------
    off, on = measured["arms"]["off"], measured["arms"]["on"]
    # both arms tripped the breaker identically, with silent partials
    assert off["trip_partials"] == on["trip_partials"] == 3
    # off: strong reads silently lose the dead shard's documents...
    assert off["read_partials"] > 0
    assert set(off["strong_hits"]) < set(off["snapshot_hits"])
    # ...and nothing bounds the queue (drains against the dead shard fail)
    assert off["shed"] == 0 and off["pending"] > QUEUE_DEPTH
    # on: downgraded reads answer complete from the published snapshot
    assert on["read_partials"] == 0
    assert on["strong_hits"] == on["snapshot_hits"]
    assert on["downgraded_reads"] > 0
    # ...the burst is shed exactly past the bound, never before
    assert on["pending"] == QUEUE_DEPTH
    assert on["shed"] == on["shed_writes"] == WRITE_BURST - QUEUE_DEPTH
    # snapshot reads kept serving in both arms
    assert off["still_serving"] and on["still_serving"]

    results.extend([
        BenchResult("off: partial strong reads", off["read_partials"]),
        BenchResult("off: queue depth after burst", off["pending"]),
        BenchResult("on: partial strong reads", on["read_partials"]),
        BenchResult("on: downgraded reads", on["downgraded_reads"]),
        BenchResult("on: writes shed", on["shed_writes"]),
        BenchResult("on: queue depth after burst", on["pending"]),
    ])
    record_report(report("Chaos soak sweep + admission A/B", results))
    record_json("chaos_soak", results, extra={
        "soaks": measured["soaks"],
        "admission_ab": measured["arms"],
        "queue_depth": QUEUE_DEPTH,
        "write_burst": WRITE_BURST,
    })
