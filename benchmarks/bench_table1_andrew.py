"""Table 1 — the Andrew Benchmark: plain FS ("UNIX") vs HAC.

Paper's numbers (seconds): UNIX 2/5/5/8/19 = 38; HAC 4/9/8/14/22 = 57.
Shape to reproduce: HAC is slower overall (paper: ~1.5×), the *relative*
overhead is largest in Makedir (2.0×) and smallest in the compute-bound
Make phase (~1.16×).

Absolute seconds are meaningless on a Python simulation; the ratios are
the result.
"""

import pytest

from repro.bench.harness import assert_shape, report_phases
from repro.bench.tables import PAPER, ratio
from repro.core.hacfs import HacFileSystem
from repro.vfs.filesystem import FileSystem
from repro.workloads.andrew import AndrewBenchmark, AndrewConfig, PHASES, RawFsAdapter

# sized so the metadata phases are well above timer noise while Make still
# dominates, as in the paper's profile
CFG = AndrewConfig(dirs=15, files_per_dir=10, functions_per_file=8)


def _min_of(runs):
    """Per-phase minimum across repetitions — the standard noise filter."""
    out = {}
    for phase in list(PHASES) + ["total"]:
        out[phase] = min(r[phase] for r in runs)
    return out


def run_pair(repetitions: int = 3):
    import gc

    gc.collect()
    gc.disable()
    try:
        unix = _min_of([AndrewBenchmark(RawFsAdapter(FileSystem()), CFG).run()
                        for _ in range(repetitions)])
        hac = _min_of([AndrewBenchmark(HacFileSystem(), CFG).run()
                       for _ in range(repetitions)])
        return unix, hac
    finally:
        gc.enable()


@pytest.mark.benchmark(group="table1")
def test_table1_andrew(benchmark, record_report):
    unix, hac = benchmark.pedantic(run_pair, rounds=1, iterations=1,
                                   warmup_rounds=1)

    rows = {"UNIX (plain VFS)": unix, "HAC": hac,
            "paper UNIX": PAPER["table1"]["unix"],
            "paper HAC": PAPER["table1"]["hac"]}
    text = report_phases("Table 1: Andrew Benchmark (seconds per phase)",
                         rows, list(PHASES) + ["total"])
    ratios = {p: ratio(hac[p], unix[p]) for p in list(PHASES) + ["total"]}
    text += "HAC/UNIX ratios: " + "  ".join(
        f"{p}={r:.2f}x" for p, r in ratios.items()) + "\n"
    paper_ratios = {p: PAPER["table1"]["hac"][p] / PAPER["table1"]["unix"][p]
                    for p in list(PHASES) + ["total"]}
    text += "paper ratios:    " + "  ".join(
        f"{p}={r:.2f}x" for p, r in paper_ratios.items()) + "\n"
    record_report(text)

    benchmark.extra_info["hac_total_slowdown"] = ratios["total"] - 1

    # --- shape assertions ----------------------------------------------------
    assert_shape("HAC total slowdown", ratios["total"], 1.02, 5.0)
    # metadata-heavy phases carry more relative overhead than Make
    assert ratios["makedir"] > ratios["make"], (
        "Makedir should carry the largest relative overhead (paper: 2.0x "
        f"vs 1.16x); got makedir={ratios['makedir']:.2f} make={ratios['make']:.2f}")
    assert ratios["make"] < ratios["total"] * 1.05, \
        "the compute-bound Make phase should dilute HAC overhead"
