"""Table 3 — indexing through HAC vs running Glimpse directly.

Paper: indexing a 17 000-file / 150 MB database directly with Glimpse vs
through the HAC library showed a 27 % time overhead and a 15 % space
overhead.

Our corpus defaults to ~1 500 files / ~2 MB (scale with HAC_BENCH_SCALE);
"direct Glimpse" is the CBA engine fed from a plain dict, "through HAC" is
a full ``reindex`` walking the live file system and charging the block
device.  Shape to reproduce: a modest positive overhead on both axes.
"""

import pytest

from repro.bench.harness import BenchResult, assert_shape, report, time_call
from repro.bench.tables import PAPER, slowdown_pct
from repro.cba.engine import CBAEngine
from repro.core.hacfs import HacFileSystem
from repro.workloads.corpus import CorpusConfig, CorpusGenerator


def make_config(scale):
    return CorpusConfig(n_files=1500 * scale, words_per_file=160,
                        dirs=30, seed=3)


def index_direct(gen, repetitions=2):
    docs = dict(gen.documents())

    def run():
        engine = CBAEngine(loader=docs.__getitem__)
        for rel, text in docs.items():
            engine.index_document(rel, path="/" + rel, mtime=1.0, text=text)
        return engine

    best = None
    for _ in range(repetitions):
        seconds, engine = time_call(run)
        best = seconds if best is None else min(best, seconds)
    return best, engine.index_size_bytes()


def index_through_hac(gen, repetitions=2):
    best = None
    for _ in range(repetitions):
        hac = HacFileSystem()
        gen.populate(hac, "/db")
        hac.clock.tick()
        seconds, _plan = time_call(lambda: hac.reindex("/"))
        best = seconds if best is None else min(best, seconds)
    space = hac.engine.index_size_bytes() + hac.metadata_bytes()
    return best, space


@pytest.mark.benchmark(group="table3")
def test_table3_indexing_overhead(benchmark, record_report, scale):
    gen = CorpusGenerator(make_config(scale))

    def run():
        direct_time, direct_space = index_direct(gen)
        hac_time, hac_space = index_through_hac(gen)
        return direct_time, direct_space, hac_time, hac_space

    direct_time, direct_space, hac_time, hac_space = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=1)

    time_overhead = slowdown_pct(hac_time, direct_time)
    space_overhead = slowdown_pct(hac_space, direct_space)
    results = [
        BenchResult("corpus files", gen.config.n_files, PAPER["table3"]["files"]),
        BenchResult("corpus MB", gen.total_bytes() / 1e6,
                    PAPER["table3"]["megabytes"]),
        BenchResult("direct index time s", direct_time),
        BenchResult("through-HAC index time s", hac_time),
        BenchResult("time overhead %", time_overhead,
                    PAPER["table3"]["time_overhead_pct"]),
        BenchResult("direct index bytes", direct_space),
        BenchResult("through-HAC bytes (index+metadata)", hac_space),
        BenchResult("space overhead %", space_overhead,
                    PAPER["table3"]["space_overhead_pct"]),
    ]
    record_report(report("Table 3: indexing through HAC vs direct Glimpse",
                         results))
    benchmark.extra_info["time_overhead_pct"] = round(time_overhead, 1)
    benchmark.extra_info["space_overhead_pct"] = round(space_overhead, 1)

    # --- shape assertions ----------------------------------------------------
    assert_shape("indexing time overhead %", time_overhead, 3.0, 300.0)
    assert space_overhead > 0, \
        "HAC must store extra per-directory metadata on top of the index"
    assert space_overhead < 200.0, \
        "HAC metadata should stay a modest fraction of the index"
