"""Ablation P — fair-share drain: a starved tenant under a 10:1 neighbour.

Two tenants share one HacFileSystem: ``alpha`` runs the high-churn
code-repo workload at ten times ``beta``'s operation volume, while
``beta`` runs the digital-library workload — a modest ingest and then a
Zipf-skewed strong-query stream.  Every strong query pays a barrier
first; without per-tenant drain buckets, beta's barrier would drain
alpha's storm too, so beta's read latency would scale with its
neighbour's write rate.

With fair-share buckets, ``barrier(tenant=beta)`` applies only beta's
own pending documents.  The guard is deterministic: the documents
drained to satisfy beta's query stream in the shared 10:1 world must be
at most **2x** what the identical beta stream drains in a solo world
with no neighbour at all (ISSUE 10's acceptance bar).  Wall-clock
latency per strong query is reported alongside and held to the same 2x
bar — generously above timer noise here, since a leaked storm costs 10x.
"""

import pytest

from repro.bench.harness import BenchResult, report, time_call
from repro.core.hacfs import HacFileSystem
from repro.core.quota import QuotaSpec
from repro.workloads.coderepo import CodeRepoGenerator
from repro.workloads.digilib import DigitalLibraryGenerator

SKEW = 10           # alpha ops per beta op
BETA_QUERIES = 30   # strong queries in beta's stream


def build_shared():
    hac = HacFileSystem()
    hac.maintenance.set_mode("batched")
    alpha = hac.tenants.create("alpha", quota=QuotaSpec(weight=1))
    beta = hac.tenants.create("beta", quota=QuotaSpec(weight=1))
    return hac, alpha, beta


def build_solo():
    hac = HacFileSystem()
    hac.maintenance.set_mode("batched")
    return hac, hac.tenants.create("beta", quota=QuotaSpec(weight=1))


def beta_phase(hac, beta, gen, scale, noise=None):
    """Beta's whole life: one ingest, then the strong-query stream, with
    *noise* (the neighbour's churn) running between beta's own calls.

    Drained docs are accumulated only inside beta's operations — that is
    what beta *pays*; drains the neighbour forces on itself (its own
    backpressure) are the neighbour's bill."""
    counters = hac.counters

    def charged(thunk):
        before = counters.get("sched.drained_docs")
        secs, out = time_call(thunk)
        return counters.get("sched.drained_docs") - before, secs, out

    drained, _secs, _ = charged(
        lambda: gen.ingest(beta, count=12 * scale, batch=6))
    secs = 0.0
    hits = 0
    for term in gen.query_stream(BETA_QUERIES * scale):
        if noise is not None:
            noise()
        d, dt, out = charged(lambda t=term: beta.glimpse(t))
        drained += d
        secs += dt
        hits += len(out)
    return drained, secs, hits


def run_shared(scale):
    """Beta's phases interleave with alpha churning at 10x volume."""
    hac, alpha, beta = build_shared()
    alpha_gen = CodeRepoGenerator(seed=23)
    paths = alpha_gen.populate(alpha, count=20 * scale)

    def churn():
        alpha_gen.churn(alpha, paths, steps=SKEW)  # the 10:1 skew

    drained, secs, hits = beta_phase(hac, beta, DigitalLibraryGenerator(
        seed=37), scale, noise=churn)
    backlog = hac.maintenance.pending_by_tenant()
    return hac, drained, secs, hits, backlog


@pytest.mark.benchmark(group="ablation-tenant")
def test_fair_share_drain_latency(benchmark, record_report, record_json,
                                  scale):
    def run():
        shared = run_shared(scale)
        solo_hac, solo_beta = build_solo()
        solo = beta_phase(solo_hac, solo_beta,
                          DigitalLibraryGenerator(seed=37), scale)
        return shared, solo

    (shared, solo) = benchmark.pedantic(run, rounds=1, iterations=1,
                                        warmup_rounds=1)
    hac, shared_drained, shared_secs, shared_hits, backlog = shared
    solo_drained, solo_secs, solo_hits = solo

    # --- correctness: the starved tenant answered exactly like solo -----
    assert shared_hits == solo_hits, \
        "neighbour churn changed beta's strong answers"

    # --- the fair-share bar: <= 2x solo, deterministic and wall ----------
    drain_ratio = shared_drained / max(solo_drained, 1)
    assert drain_ratio <= 2.0, (
        f"beta drained {shared_drained} docs next to a {SKEW}:1 neighbour "
        f"vs {solo_drained} solo — fair share leaked the storm")
    wall_ratio = shared_secs / max(solo_secs, 1e-9)
    assert wall_ratio <= 2.0, (
        f"beta's query stream took {shared_secs:.4f}s next to the "
        f"neighbour vs {solo_secs:.4f}s solo")
    # alpha's storm is still queued in alpha's bucket, not beta's
    assert backlog.get("alpha", 0) > 0
    assert backlog.get("beta", 0) == 0

    per_query = BETA_QUERIES * scale
    results = [
        BenchResult("beta strong queries", per_query),
        BenchResult("alpha:beta op skew", SKEW),
        BenchResult("beta docs drained (shared)", shared_drained),
        BenchResult("beta docs drained (solo)", solo_drained),
        BenchResult("drain ratio (<= 2)", drain_ratio),
        BenchResult("beta query stream s (shared)", shared_secs, unit="s"),
        BenchResult("beta query stream s (solo)", solo_secs, unit="s"),
        BenchResult("latency ratio (<= 2)", wall_ratio),
        BenchResult("alpha backlog at end", backlog.get("alpha", 0)),
    ]
    record_report(report(
        "Ablation P: fair-share drain under a 10:1 neighbour", results))
    record_json("ablation_tenant", results,
                extra={"skew": SKEW, "drain_ratio": drain_ratio,
                       "latency_ratio": wall_ratio})
