"""Ablation G — recovery cost: rebuild the index vs restore the saved one.

Real Glimpse persists its index files; recovery then costs whatever changed
since the save rather than a full re-read of the corpus.  This ablation
measures both recovery paths for the same HAC file system, plus the two
costs the write-ahead intent journal introduces: replaying an interrupted
intent on restore, and the steady-state write amplification of journaling
every multi-structure mutation.
"""

import pytest

from repro.bench.harness import (BenchResult, merge_breakdowns, report,
                                 time_call)
from repro.core.hacfs import HacFileSystem
from repro.errors import DeviceCrashed
from repro.obs import Observability
from repro.vfs.blockdev import FaultPlan
from repro.workloads.corpus import CorpusConfig, CorpusGenerator

N_FILES = 600


def build():
    gen = CorpusGenerator(CorpusConfig(n_files=N_FILES, words_per_file=120,
                                       dirs=12, seed=77))
    hac = HacFileSystem()
    gen.populate(hac, "/db")
    hac.clock.tick()
    hac.ssync("/")
    hac.smkdir("/q", "data OR file")
    return hac


@pytest.mark.benchmark(group="ablation-recovery")
def test_rebuild_vs_restore(benchmark, record_report, record_json):
    def run(repetitions=2):
        rebuild_s = restore_s = None
        rebuild_spans = restore_spans = None
        for _ in range(repetitions):
            cold = build()
            obs = Observability(enabled=True)
            secs, revived = time_call(
                lambda: HacFileSystem.restore(cold.fs, reuse_index=False,
                                              obs=obs))
            rebuild_retokenised = revived.counters.get("engine.indexed")
            rebuild_spans = obs.trace.breakdown()
            rebuild_s = secs if rebuild_s is None else min(rebuild_s, secs)

            warm = build()
            saved_bytes = warm.save_index()
            obs = Observability(enabled=True)
            secs, revived = time_call(
                lambda: HacFileSystem.restore(warm.fs, obs=obs))
            restore_spans = obs.trace.breakdown()
            restore_s = secs if restore_s is None else min(restore_s, secs)
            retokenised = revived.counters.get("engine.indexed")
        return (rebuild_s, restore_s, saved_bytes, retokenised,
                rebuild_retokenised, rebuild_spans, restore_spans)

    (rebuild_s, restore_s, saved_bytes, retokenised, rebuild_retokenised,
     rebuild_spans, restore_spans) = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=1)

    results = [
        BenchResult("corpus files", N_FILES),
        BenchResult("recovery by full rebuild s", rebuild_s,
                    spans=rebuild_spans),
        BenchResult("recovery from saved index s", restore_s,
                    spans=restore_spans),
        BenchResult("rebuild / restore", rebuild_s / restore_s),
        BenchResult("saved index bytes", saved_bytes),
        BenchResult("docs re-tokenised on restore", retokenised),
        BenchResult("docs re-tokenised on rebuild", rebuild_retokenised),
    ]
    record_report(report("Ablation G: recovery — rebuild vs saved index",
                         results))
    record_json("ablation_recovery", results,
                spans=merge_breakdowns(rebuild_spans, restore_spans))

    # the saved index wins because it skips re-tokenising the corpus;
    # asserted on doc counts, which cannot flake (the wall times above are
    # reported only)
    assert retokenised == 0, "restore must not re-read unchanged documents"
    assert rebuild_retokenised >= N_FILES, (
        f"a rebuild must re-tokenise the whole corpus, got "
        f"{rebuild_retokenised} of {N_FILES}")


@pytest.mark.benchmark(group="ablation-recovery")
def test_journal_replay_and_write_amplification(benchmark, record_report,
                                                record_json):
    def run():
        # -- crash replay: restore with one interrupted intent in the wal --
        crashed = build()
        crashed.save_index()
        dev = crashed.fs.device
        dev.set_fault_plan(FaultPlan(crash_at=dev.record_write_index + 4))
        try:
            crashed.smkdir("/crashq", "data")
        except DeviceCrashed:
            pass
        obs = Observability(enabled=True)
        replay_s, revived = time_call(
            lambda: HacFileSystem.restore(crashed.fs, obs=obs))
        replay_spans = obs.trace.breakdown()
        rolled_back = len(revived.last_recovery.rolled_back)

        clean = build()
        clean.save_index()
        clean_s, _ = time_call(lambda: HacFileSystem.restore(clean.fs))

        # -- steady-state WAL write amplification over journaled mutations --
        hac = build()
        c, dev = hac.counters, hac.fs.device
        begins0 = c.get("journal.begins")
        pre0 = c.get("journal.preimages")
        ops0 = dev.record_write_index
        for i in range(30):
            hac.mkdir(f"/m{i}")
            hac.set_query("/q", "file" if i % 2 else "data OR file")
        wal_writes = (c.get("journal.begins") - begins0) \
            + (c.get("journal.preimages") - pre0)
        total_ops = dev.record_write_index - ops0
        # every committed wal record costs a write and a GC delete, and both
        # consume a record-op index; the rest is payload
        payload_writes = total_ops - 2 * wal_writes
        amplification = total_ops / payload_writes
        return (replay_s, clean_s, rolled_back, wal_writes, payload_writes,
                amplification, replay_spans)

    (replay_s, clean_s, rolled_back, wal_writes, payload_writes,
     amplification, replay_spans) = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=1)

    results = [
        BenchResult("restore with wal replay s", replay_s,
                    spans=replay_spans),
        BenchResult("restore with empty wal s", clean_s),
        BenchResult("intents rolled back", rolled_back),
        BenchResult("wal record writes", wal_writes),
        BenchResult("payload record writes", payload_writes),
        BenchResult("record write amplification", amplification),
    ]
    record_report(report("Ablation G2: journal — replay cost and "
                         "write amplification", results))
    record_json("ablation_journal", results, spans=replay_spans)

    assert rolled_back == 1, "the interrupted intent must be rolled back"
    assert amplification <= 4.0, (
        f"WAL steady-state write amplification regressed: {amplification:.2f}x "
        f"({wal_writes} wal writes for {payload_writes} payload writes)")
