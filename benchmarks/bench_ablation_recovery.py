"""Ablation G — recovery cost: rebuild the index vs restore the saved one.

Real Glimpse persists its index files; recovery then costs whatever changed
since the save rather than a full re-read of the corpus.  This ablation
measures both recovery paths for the same HAC file system.
"""

import pytest

from repro.bench.harness import BenchResult, report, time_call
from repro.core.hacfs import HacFileSystem
from repro.workloads.corpus import CorpusConfig, CorpusGenerator

N_FILES = 600


def build():
    gen = CorpusGenerator(CorpusConfig(n_files=N_FILES, words_per_file=120,
                                       dirs=12, seed=77))
    hac = HacFileSystem()
    gen.populate(hac, "/db")
    hac.clock.tick()
    hac.ssync("/")
    hac.smkdir("/q", "data OR file")
    return hac


@pytest.mark.benchmark(group="ablation-recovery")
def test_rebuild_vs_restore(benchmark, record_report):
    def run(repetitions=2):
        rebuild_s = restore_s = None
        for _ in range(repetitions):
            cold = build()
            secs, _ = time_call(
                lambda: HacFileSystem.restore(cold.fs, reuse_index=False))
            rebuild_s = secs if rebuild_s is None else min(rebuild_s, secs)

            warm = build()
            saved_bytes = warm.save_index()
            secs, revived = time_call(
                lambda: HacFileSystem.restore(warm.fs))
            restore_s = secs if restore_s is None else min(restore_s, secs)
            retokenised = revived.counters.get("engine.indexed")
        return rebuild_s, restore_s, saved_bytes, retokenised

    rebuild_s, restore_s, saved_bytes, retokenised = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=1)

    results = [
        BenchResult("corpus files", N_FILES),
        BenchResult("recovery by full rebuild s", rebuild_s),
        BenchResult("recovery from saved index s", restore_s),
        BenchResult("rebuild / restore", rebuild_s / restore_s),
        BenchResult("saved index bytes", saved_bytes),
        BenchResult("docs re-tokenised on restore", retokenised),
    ]
    record_report(report("Ablation G: recovery — rebuild vs saved index",
                         results))

    assert retokenised == 0, "restore must not re-read unchanged documents"
    assert rebuild_s > restore_s * 1.3, (
        f"saved-index recovery should clearly win: rebuild {rebuild_s:.3f}s "
        f"vs restore {restore_s:.3f}s")
