"""Shared fixtures for the benchmark suite.

Every benchmark prints a paper-vs-measured table and appends it to
``benchmarks/_reports/summary.txt`` so a plain
``pytest benchmarks/ --benchmark-only`` leaves a readable artefact even
though pytest captures stdout.

``HAC_BENCH_SCALE`` (int, default 1) multiplies corpus sizes for the
indexing/query benches — set it to 10 to approach the paper's 17 000-file
database on a machine with time to spare.
"""

import os
import pathlib

import pytest

REPORT_DIR = pathlib.Path(__file__).parent / "_reports"


def pytest_configure(config):
    REPORT_DIR.mkdir(exist_ok=True)
    summary = REPORT_DIR / "summary.txt"
    if summary.exists():
        summary.unlink()


@pytest.fixture(scope="session")
def scale():
    return max(1, int(os.environ.get("HAC_BENCH_SCALE", "1")))


@pytest.fixture
def record_report():
    """Append a report block to the summary artefact (and stdout)."""

    def _record(text: str) -> None:
        with open(REPORT_DIR / "summary.txt", "a", encoding="utf-8") as fh:
            fh.write(text)
            if not text.endswith("\n"):
                fh.write("\n")

    return _record


@pytest.fixture
def record_json():
    """Write ``BENCH_<name>.json`` with the bench's rows; every row carries
    a span breakdown (its own traced one, or the bench-level fallback)."""

    def _record(name, results, spans=None, extra=None):
        from repro.bench.harness import write_bench_json
        write_bench_json(REPORT_DIR / f"BENCH_{name}.json", name, results,
                         spans=spans, extra=extra)

    return _record
