"""Ablation O — the CAS index vs scan-and-filter subtree queries.

Two path-dimension claims from DESIGN.md §3j, measured on a deep tree
(the corpus shape where content-global evaluation hurts most):

* **Candidate pruning**: a ``scope:<subtree> AND <phrase>`` query must
  verify candidate documents by scanning them (phrases defeat the
  postings fast path).  Without a CAS index every candidate the block
  index nominates is fetched and scanned, then discarded by the path
  predicate; with one, candidates are intersected with the scope's
  partitions *before* any loader fetch.  Counted in
  ``engine.docs_scanned`` — the contract is at least 2x fewer
  verifications.
* **Zero-selectivity short-circuit**: a conjunction with a zero-df term
  or an empty scope returns without nominating blocks, scanning, or
  probing shards, and says so in ``engine.planner_empty_shortcircuit``.
"""

import random

import pytest

from repro.bench.harness import BenchResult, report, time_call
from repro.cba.engine import CBAEngine
from repro.cba.queryparser import parse_query

DEPTH = 8
FANOUT = 3
WORDS = ["fingerprint", "ridge", "banana", "recipe", "budget", "lunch",
         "minutiae", "bread", "survey", "archive"]


def deep_corpus():
    """Files at every level of a depth-8 tree, fanout 3 near the root —
    the same shape the path-map ablation uses."""
    rng = random.Random(0xCA5)
    docs = {}   # key -> (path, text)
    stack = [("", 0)]
    while stack:
        prefix, depth = stack.pop()
        if depth == DEPTH:
            continue
        for i in range(FANOUT if depth < 3 else 1):
            d = f"{prefix}/d{depth}_{i}"
            for j in range(2):
                key = len(docs)
                words = rng.choices(WORDS, k=10)
                if rng.random() < 0.5:
                    words[3:5] = ["fingerprint", "ridge"]  # the phrase
                docs[key] = (f"{d}/f{j}.txt", " ".join(words))
            stack.append((d, depth + 1))
    return docs


def build_engine(docs, cas):
    engine = CBAEngine(loader=lambda k: docs[k][1], num_blocks=16, cas=cas)
    for key, (path, _text) in docs.items():
        engine.index_document(key, path=path, mtime=0.0)
    return engine


def scoped_queries(docs):
    """One phrase query per second-level subtree: deep scopes against a
    corpus that is mostly outside each of them."""
    subtrees = sorted({"/" + p[0].split("/")[1] + "/" + p[0].split("/")[2]
                       for p in docs.values() if p[0].count("/") > 2})
    return [parse_query(f'scope:{d} AND "fingerprint ridge"')
            for d in subtrees]


@pytest.mark.benchmark(group="ablation-cas")
def test_cas_probe_vs_scan_and_filter(benchmark, record_report, record_json):
    def run():
        docs = deep_corpus()
        queries = scoped_queries(docs)
        out = {}
        for label, cas in (("scan", False), ("cas", True)):
            engine = build_engine(docs, cas)

            def workload():
                answers = []
                for ast in queries:
                    engine.clear_query_cache()  # cold, like real Glimpse
                    answers.append(engine.search(ast).to_bytes())
                return answers

            workload()  # warm block structures identically
            scanned0 = engine.counters.get("engine.docs_scanned")
            secs, answers = time_call(workload)
            out[label] = (secs,
                          engine.counters.get("engine.docs_scanned")
                          - scanned0,
                          engine.counters.get("engine.cas_interleaved_probes"),
                          answers, engine, len(docs), len(queries))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=1)
    (scan_s, scan_verifs, _p, scan_answers, scan_engine,
     n_docs, n_queries) = out["scan"]
    (cas_s, cas_verifs, _p2, cas_answers, cas_engine, _n, _q) = out["cas"]

    # bit-identity first — a fast wrong answer is worthless
    assert cas_answers == scan_answers

    # the interleaved probe also answers scope+term conjunctions whole
    probed = parse_query("scope:/d0_0 AND fingerprint")
    assert cas_engine.search(probed).to_bytes() == \
        scan_engine.search(probed).to_bytes()
    assert cas_engine.counters.get("engine.cas_interleaved_probes") > 0

    # zero-selectivity conjunctions short-circuit without scanning
    empties = ["scope:/d0_0 AND zzznever", "scope:/nowhere AND fingerprint"]
    for engine in (cas_engine, scan_engine):
        before = engine.counters.get("engine.docs_scanned")
        for text in empties:
            assert engine.search(parse_query(text)).to_bytes() == b""
        assert engine.counters.get("engine.docs_scanned") == before
        assert engine.counters.get("engine.planner_empty_shortcircuit") \
            >= len(empties)

    results = [
        BenchResult("corpus files", n_docs),
        BenchResult("tree depth", DEPTH),
        BenchResult("scoped phrase queries", n_queries),
        BenchResult("candidate verifications (scan-and-filter)",
                    scan_verifs),
        BenchResult("candidate verifications (CAS)", cas_verifs),
        # a perfectly-pruned run verifies only true subtree members;
        # clamp the denominator so the ratio stays JSON-clean
        BenchResult("verification ratio (scan / cas)",
                    scan_verifs / max(cas_verifs, 1)),
        BenchResult("CAS partitions",
                    len(cas_engine.cas.roots())),
        BenchResult("scan-and-filter s", scan_s),
        BenchResult("cas s", cas_s),
    ]
    record_report(report("Ablation O: subtree-scoped queries — CAS probe "
                         "vs scan-and-filter", results))
    record_json("ablation_cas", results)

    # the contract: interleaving the path dimension prunes at least 2x
    # of the candidate-document verifications on a deep tree
    assert cas_verifs * 2 <= scan_verifs, (
        f"CAS pruned too few verifications: {cas_verifs} vs {scan_verifs}")
