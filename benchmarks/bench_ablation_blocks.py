"""Ablation B — the Glimpse block-count tradeoff.

Glimpse's whole design is the two-level index: fewer blocks mean a smaller
index but more false-positive scanning; more blocks approach a full
inverted index.  This ablation sweeps the block count over one corpus and
reports index size and documents scanned per query — the tradeoff curve
the paper's choice of Glimpse sits on.
"""

import pytest

from repro.bench.harness import BenchResult, report
from repro.cba.engine import CBAEngine
from repro.cba.queryparser import parse_query
from repro.workloads.corpus import CorpusConfig, CorpusGenerator

BLOCK_COUNTS = (4, 32, 256)
QUERY = "needle"


def build(num_blocks, gen):
    docs = dict(gen.documents())
    # fast path off: this ablation measures the block-count/scan tradeoff,
    # which the doc-postings path would short-circuit entirely
    engine = CBAEngine(loader=docs.__getitem__, num_blocks=num_blocks,
                       fast_path=False)
    for rel, text in docs.items():
        engine.index_document(rel, path="/" + rel, mtime=0.0, text=text)
    return engine


@pytest.fixture(scope="module")
def gen():
    return CorpusGenerator(CorpusConfig(
        n_files=600, words_per_file=150, dirs=10,
        topics={"needle": 0.02}, seed=13))


@pytest.mark.benchmark(group="ablation-blocks")
@pytest.mark.parametrize("num_blocks", BLOCK_COUNTS)
def test_search_cost_by_block_count(benchmark, num_blocks, gen):
    engine = build(num_blocks, gen)
    ast = parse_query(QUERY)

    def cold_search():
        engine.clear_query_cache()   # measure the scan, not the cache
        return engine.search(ast)

    benchmark(cold_search)


@pytest.mark.benchmark(group="ablation-blocks-report")
def test_block_tradeoff_report(benchmark, record_report, gen):
    def sweep():
        rows = []
        for num_blocks in BLOCK_COUNTS:
            engine = build(num_blocks, gen)
            engine.counters.reset()
            hits = engine.search(parse_query(QUERY))
            scanned = engine.counters.get("engine.docs_scanned")
            rows.append((num_blocks, engine.index_size_bytes(),
                         scanned, len(hits)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    results = []
    for num_blocks, size, scanned, hits in rows:
        results.append(BenchResult(
            f"blocks={num_blocks}: index bytes", size))
        results.append(BenchResult(
            f"blocks={num_blocks}: docs scanned", scanned))
    results.append(BenchResult("true matches", rows[0][3]))
    record_report(report("Ablation B: Glimpse block-count tradeoff", results))

    sizes = [size for _b, size, _s, _h in rows]
    scans = [scanned for _b, _size, scanned, _h in rows]
    hits = [h for *_rest, h in rows]
    assert hits[0] == hits[1] == hits[2], "results must not depend on blocks"
    assert sizes == sorted(sizes), "more blocks -> larger index"
    assert scans == sorted(scans, reverse=True), "more blocks -> less scanning"
    assert scans[-1] >= hits[-1], "scanning can never drop below true matches"
