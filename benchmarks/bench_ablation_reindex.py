"""Ablation D — incremental reindexing vs full rebuild (§2.4's economics).

The lazy data-consistency policy is only worth it because a periodic
reindex costs in proportion to what *changed*, not to the corpus.  This
ablation touches a fraction of the files and compares the incremental
reindex against rebuilding the index from scratch.
"""

import pytest

from repro.bench.harness import BenchResult, report, time_call, traced_call
from repro.core.hacfs import HacFileSystem
from repro.cba.engine import CBAEngine
from repro.workloads.corpus import CorpusConfig, CorpusGenerator

N_FILES = 800
CHANGED_FRACTION = 0.05


def build():
    gen = CorpusGenerator(CorpusConfig(n_files=N_FILES, words_per_file=120,
                                       dirs=16, seed=21))
    hac = HacFileSystem()
    paths = gen.populate(hac, "/db")
    hac.clock.tick()
    hac.ssync("/")
    return hac, paths


@pytest.mark.benchmark(group="ablation-reindex")
def test_incremental_vs_full(benchmark, record_report, record_json):
    def run():
        hac, paths = build()
        changed = paths[:int(N_FILES * CHANGED_FRACTION)]
        hac.clock.tick()
        for path in changed:
            hac.write_file(path, b"freshly changed fingerprint text\n")
        hac.clock.tick()

        tokenised0 = hac.counters.get("engine.indexed") \
            + hac.counters.get("engine.updated")
        inc_seconds, plan, inc_spans = traced_call(
            hac.obs, lambda: hac.reindex("/"))
        inc_tokenised = (hac.counters.get("engine.indexed")
                         + hac.counters.get("engine.updated")) - tokenised0

        # full rebuild: a fresh engine over the same live tree
        def rebuild():
            engine = CBAEngine(loader=hac._load_doc)
            from repro.vfs.walker import iter_files
            for path, node in iter_files(hac.fs, "/"):
                res = hac.fs.resolve(path, follow=False)
                engine.index_document((res.fs.fsid, res.node.ino), path,
                                      res.node.attrs.mtime)
            return engine

        full_seconds, engine = time_call(rebuild)
        full_tokenised = engine.counters.get("engine.indexed")
        return (inc_seconds, full_seconds, plan, inc_tokenised,
                full_tokenised, inc_spans)

    (inc_seconds, full_seconds, plan, inc_tokenised, full_tokenised,
     inc_spans) = benchmark.pedantic(run, rounds=1, iterations=1)
    results = [
        BenchResult("corpus files", N_FILES),
        BenchResult("files changed", plan.touched),
        BenchResult("incremental reindex s", inc_seconds, spans=inc_spans),
        BenchResult("full rebuild s", full_seconds),
        BenchResult("full / incremental", full_seconds / inc_seconds),
        BenchResult("docs tokenised incremental", inc_tokenised),
        BenchResult("docs tokenised full", full_tokenised),
    ]
    record_report(report("Ablation D: incremental vs full reindex", results))
    record_json("ablation_reindex", results, spans=inc_spans)

    assert plan.touched == int(N_FILES * CHANGED_FRACTION)
    assert not plan.added and not plan.removed
    # the economics, asserted on what each pass actually tokenised (wall
    # times above are reported only — they flake on loaded CPUs): the
    # incremental pass re-reads exactly the change set, the rebuild re-reads
    # the whole corpus
    assert inc_tokenised == plan.touched, (
        "incremental reindex must tokenise exactly the change set, "
        f"got {inc_tokenised} for {plan.touched} changed files")
    assert full_tokenised >= N_FILES, (
        f"a full rebuild must tokenise the whole corpus, got "
        f"{full_tokenised} of {N_FILES}")
    assert full_tokenised >= inc_tokenised * 10, (
        "incremental reindex must cost in proportion to the change set, "
        f"got {inc_tokenised} vs {full_tokenised} docs tokenised")
