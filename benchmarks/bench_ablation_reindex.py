"""Ablation D — incremental reindexing vs full rebuild (§2.4's economics).

The lazy data-consistency policy is only worth it because a periodic
reindex costs in proportion to what *changed*, not to the corpus.  This
ablation touches a fraction of the files and compares the incremental
reindex against rebuilding the index from scratch.
"""

import pytest

from repro.bench.harness import BenchResult, report, time_call
from repro.core.hacfs import HacFileSystem
from repro.cba.engine import CBAEngine
from repro.workloads.corpus import CorpusConfig, CorpusGenerator

N_FILES = 800
CHANGED_FRACTION = 0.05


def build():
    gen = CorpusGenerator(CorpusConfig(n_files=N_FILES, words_per_file=120,
                                       dirs=16, seed=21))
    hac = HacFileSystem()
    paths = gen.populate(hac, "/db")
    hac.clock.tick()
    hac.ssync("/")
    return hac, paths


@pytest.mark.benchmark(group="ablation-reindex")
def test_incremental_vs_full(benchmark, record_report):
    def run():
        hac, paths = build()
        changed = paths[:int(N_FILES * CHANGED_FRACTION)]
        hac.clock.tick()
        for path in changed:
            hac.write_file(path, b"freshly changed fingerprint text\n")
        hac.clock.tick()

        inc_seconds, plan = time_call(lambda: hac.reindex("/"))

        # full rebuild: a fresh engine over the same live tree
        def rebuild():
            engine = CBAEngine(loader=hac._load_doc)
            from repro.vfs.walker import iter_files
            for path, node in iter_files(hac.fs, "/"):
                res = hac.fs.resolve(path, follow=False)
                engine.index_document((res.fs.fsid, res.node.ino), path,
                                      res.node.attrs.mtime)
            return engine

        full_seconds, _engine = time_call(rebuild)
        return inc_seconds, full_seconds, plan

    inc_seconds, full_seconds, plan = benchmark.pedantic(run, rounds=1,
                                                         iterations=1)
    results = [
        BenchResult("corpus files", N_FILES),
        BenchResult("files changed", plan.touched),
        BenchResult("incremental reindex s", inc_seconds),
        BenchResult("full rebuild s", full_seconds),
        BenchResult("full / incremental", full_seconds / inc_seconds),
    ]
    record_report(report("Ablation D: incremental vs full reindex", results))

    assert plan.touched == int(N_FILES * CHANGED_FRACTION)
    assert not plan.added and not plan.removed
    assert full_seconds > inc_seconds * 2, (
        "incremental reindex must cost in proportion to the change set, "
        f"got inc={inc_seconds:.4f}s full={full_seconds:.4f}s")
