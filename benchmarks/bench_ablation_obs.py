"""Ablation H — the observability plane: what tracing sees, what it costs.

Two claims to pin down:

* **structure** — with capture on, every journaled operation produces a
  root span whose op id equals its journal sequence number, nested spans
  land under their parents, and the metrics registry records the query
  distributions.  All of this is deterministic and asserted.
* **cost** — with capture off (the default), the hooks are one attribute
  check; enabled, they buffer spans.  Both wall times are *reported* (the
  disabled-mode overhead budget lives in EXPERIMENTS.md) but not asserted —
  wall-clock ratios of a sub-second workload flake on shared CPUs.
"""

import pytest

from repro.bench.harness import BenchResult, report, time_call
from repro.core.hacfs import HacFileSystem

N_FILES = 40


def workload(hac):
    """A deterministic mixed workload touching every instrumented layer."""
    hac.makedirs("/docs")
    for i in range(N_FILES):
        hac.write_file(f"/docs/f{i:02d}.txt",
                       f"alpha beta gamma delta doc{i}\n".encode())
    hac.clock.tick()
    hac.ssync("/")
    hac.smkdir("/q-alpha", "alpha")
    hac.smkdir("/q-beta", "beta AND gamma")
    hac.set_query("/q-beta", "beta")
    hac.unlink("/docs/f00.txt")
    hac.clock.tick()
    hac.ssync("/")


@pytest.mark.benchmark(group="ablation-obs")
def test_span_structure_and_capture_cost(benchmark, record_report,
                                         record_json):
    def run():
        traced = HacFileSystem()
        traced.obs.enable()
        traced_s, _ = time_call(lambda: workload(traced))

        plain = HacFileSystem()
        plain_s, _ = time_call(lambda: workload(plain))
        return traced, plain, traced_s, plain_s

    traced, plain, traced_s, plain_s = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=1)

    spans = traced.obs.trace.spans()
    breakdown = traced.obs.trace.breakdown()
    begin_seqs = {s.op_id
                  for s in traced.obs.trace.spans(name="journal.begin")}
    root_op_ids = {s.op_id for s in spans
                   if s.parent_id is None and s.op_id is not None}

    results = [
        BenchResult("workload files", N_FILES),
        BenchResult("spans captured", len(spans), spans=breakdown),
        BenchResult("spans dropped", traced.obs.trace.dropped),
        BenchResult("journaled ops traced", len(begin_seqs)),
        BenchResult("workload s (capture on)", traced_s, spans=breakdown),
        BenchResult("workload s (capture off)", plain_s),
    ]
    record_report(report("Ablation H: observability — span structure and "
                         "capture cost", results))
    record_json("ablation_obs", results, spans=breakdown)

    # --- structural assertions (all deterministic) ---------------------------
    # capture off by default: the plain world emitted nothing
    assert not plain.obs.enabled
    assert plain.obs.trace.spans() == []
    assert plain.obs.metrics.histograms() == {}

    # every journaled op owns exactly one root span stamped with its seq
    assert begin_seqs, "the workload must exercise the journal"
    assert root_op_ids == begin_seqs, (
        f"journal seqs {sorted(begin_seqs)} must each correlate with a root "
        f"span op id {sorted(root_op_ids)}")
    assert traced.counters.get("journal.begins") == len(begin_seqs)

    # nesting: every non-root span's parent is a captured span
    by_id = {s.span_id: s for s in spans}
    for s in spans:
        if s.parent_id is not None:
            assert s.parent_id in by_id, f"orphan span {s.name}"

    # the layers all reported in: VFS, device, CBA, cascade, journal
    names = {s.name for s in spans}
    for expected in ("vfs.write_file", "dev.write_record", "cba.search",
                     "hac.cascade", "hac.reevaluate", "journal.begin",
                     "journal.commit", "hac.smkdir"):
        assert expected in names, f"missing span family: {expected}"

    # searches recorded their candidate-block distribution
    hist = traced.obs.metrics.histogram("cba.candidate_blocks")
    assert hist is not None and hist.count > 0

    # the breakdown conserves time: self time never exceeds inclusive time
    for name, row in breakdown.items():
        assert row["self_ms"] <= row["wall_ms"] + 1e-6, name
