"""Ablation J — sharded scatter-gather vs the monolithic engine.

The cluster coordinator plans each query once, probes every shard for
per-term candidate blocks, evaluates the block-level boolean exactly as
the monolith would, then scatters the planned AST with the *global*
candidate blocks to each shard and ORs the per-shard answers.  The cost
model to verify: answers stay bit-identical, each document is tokenised
exactly once no matter how many shards exist, and the duplicated work of
fanning one query out to K shards is bounded by K× the monolith's scan
work (each shard verifies only its own members of the shared blocks).

The JSON artefact carries the scatter-gather span breakdown
(``cluster.plan`` / ``cluster.probe`` / ``cluster.scatter`` / ``rpc.call``)
and the per-shard candidate-block counters, so regressions in either the
merge or the partitioning are visible, not just total wall time.

Wall times are report-only; every asserted guard reads deterministic
counters.
"""

import random

import pytest

from repro.bench.harness import BenchResult, report, time_call, traced_call
from repro.cba.engine import CBAEngine
from repro.cba.queryparser import parse_query
from repro.cluster import ShardedSearchCluster
from repro.obs import Observability
from repro.util.stats import Counters

WORDS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta",
         "theta", "iota", "kappa", "needleword", "commonword"]
K = 3
NUM_BLOCKS = 64

QUERIES = ["needleword", "commonword", "commonword AND needleword",
           "(alpha OR beta) AND NOT gamma", '"delta epsilon"',
           "commonword AND NOT needleword"]


def build_corpus(scale):
    rng = random.Random(23)
    texts = {}
    for i in range(300 * scale):
        words = [rng.choice(WORDS[:10]) for _ in range(40)]
        if rng.random() < 0.5:
            words.append("commonword")
        if rng.random() < 0.03:
            words.append("needleword")
        texts[("bench", i)] = " ".join(words)
    return texts


def build_mono(texts):
    counters = Counters()
    engine = CBAEngine(loader=lambda k: texts.get(k, ""),
                       num_blocks=NUM_BLOCKS, counters=counters)
    for key in sorted(texts):
        engine.index_document(key, path=f"/{key[1]}", mtime=1.0)
    return engine, counters


def build_cluster(texts):
    counters = Counters()
    cluster = ShardedSearchCluster(lambda k: texts.get(k, ""),
                                   [f"s{i}" for i in range(K)],
                                   num_blocks=NUM_BLOCKS, counters=counters,
                                   latency=0.0)
    for key in sorted(texts):
        cluster.index_document(key, path=f"/{key[1]}", mtime=1.0)
    return cluster, counters


@pytest.mark.benchmark(group="ablation-cluster")
def test_scatter_gather_fanout(benchmark, record_report, record_json, scale):
    texts = build_corpus(scale)
    asts = [parse_query(q) for q in QUERIES]

    def run():
        mono, mono_counters = build_mono(texts)
        cluster, cluster_counters = build_cluster(texts)
        # tokenisation happens at indexing time: snapshot before the reset
        indexed = (mono_counters.get("engine.indexed_bytes"),
                   cluster_counters.get("engine.indexed_bytes"))
        mono_counters.reset()
        cluster_counters.reset()
        mono_secs, mono_answers = time_call(
            lambda: [mono.search(ast).to_bytes() for ast in asts])
        obs = Observability()
        cluster.tracer = obs.trace
        cluster.metrics = obs.metrics
        cluster_secs, cluster_answers, breakdown = traced_call(
            obs, lambda: [cluster.search(ast).to_bytes() for ast in asts])
        return (mono, mono_counters, mono_secs, mono_answers, indexed,
                cluster, cluster_counters, cluster_secs, cluster_answers,
                breakdown)

    (mono, mono_counters, mono_secs, mono_answers, indexed, cluster,
     cluster_counters, cluster_secs, cluster_answers, breakdown) = \
        benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=1)

    # --- correctness: the merge is bit-identical ------------------------
    assert cluster_answers == mono_answers

    # --- deterministic guards -------------------------------------------
    mono_indexed, cluster_indexed = indexed
    assert cluster_indexed == mono_indexed, \
        "sharding must tokenise each document exactly once"
    mono_scanned = mono_counters.get("engine.docs_scanned")
    cluster_scanned = cluster_counters.get("engine.docs_scanned")
    assert cluster_scanned <= K * max(mono_scanned, 1), (
        f"K={K} fan-out must stay within K x the monolith's scan work: "
        f"{cluster_scanned:g} vs {mono_scanned:g}")
    mono_bytes = mono_counters.get("engine.bytes_scanned")
    cluster_bytes = cluster_counters.get("engine.bytes_scanned")
    assert cluster_bytes <= K * max(mono_bytes, 1)

    rpc_calls = sum(cluster_counters.get(f"rpc.shard.{sid}.calls")
                    for sid in cluster.shardmap.shard_ids)
    per_shard = {sid: cluster_counters.get(
        f"cluster.shard.{sid}.candidate_blocks")
        for sid in cluster.shardmap.shard_ids}
    assert all(blocks > 0 for blocks in per_shard.values()), \
        "every shard must have contributed candidate blocks"

    # --- degradation smoke: one dead shard, queries still answer --------
    cluster.kill_shard("s1")
    degraded = [cluster.search(ast) for ast in asts]
    assert not any(cluster.members("s1").intersects(hits)
                   for hits in degraded)
    assert cluster.missing_shards == {"s1"}

    results = [
        BenchResult("corpus docs", len(texts)),
        BenchResult("queries", len(QUERIES)),
        BenchResult("monolith search s", mono_secs, unit="s"),
        BenchResult(f"cluster (K={K}) search s", cluster_secs, unit="s",
                    spans=breakdown),
        BenchResult("monolith docs scanned", mono_scanned),
        BenchResult("cluster docs scanned", cluster_scanned),
        BenchResult("scan amplification (<= K)",
                    cluster_scanned / max(mono_scanned, 1)),
        BenchResult("monolith bytes scanned", mono_bytes),
        BenchResult("cluster bytes scanned", cluster_bytes),
        BenchResult("shard RPCs (probe + scatter)", rpc_calls),
        BenchResult("degraded queries answered", len(degraded)),
    ]
    results.extend(
        BenchResult(f"candidate blocks [{sid}]", blocks)
        for sid, blocks in sorted(per_shard.items()))
    record_report(report("Ablation J: sharded scatter-gather", results))
    record_json("ablation_cluster", results, spans=breakdown,
                extra={"shards": K,
                       "per_shard_candidate_blocks": per_shard})
